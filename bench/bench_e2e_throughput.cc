/**
 * @file
 * Canonical end-to-end throughput benchmark — the stack's perf
 * trajectory anchor.
 *
 * Drives a configurable access mix (read/write ratio, injected
 * CCCA-fault rate, recovery on/off, optional patrol scrubbing)
 * through the full ProtectionStack via the high-level read()/write()
 * interface and reports host-side performance: accesses per second,
 * the ns/access distribution (p50/p90/p99), and a per-mechanism
 * wall-clock breakdown.
 *
 * Two passes over the identical access stream (same seeds):
 *  1. a *hot* pass with no Observer attached — the canonical
 *     throughput and latency numbers, free of instrumentation cost;
 *  2. an *instrumented* pass with stats + profiling (and, with
 *     --trace PATH, a JSONL event trace) — the per-mechanism time
 *     breakdown and event counts.
 *
 * `--json BENCH_e2e.json` writes the schema-versioned artifact that
 * tools/compare_bench.py diffs against the committed baseline in CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "aiecc/cost_model.hh"
#include "aiecc/stack.hh"
#include "bench_util.hh"
#include "common/checkpoint.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "ddr4/pins.hh"
#include "dram/rank.hh"
#include "obs/coverage.hh"
#include "obs/heartbeat.hh"
#include "obs/lineage.hh"
#include "obs/observer.hh"
#include "obs/profile.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"
#include "ras/health.hh"

namespace aiecc
{
namespace
{

struct MixConfig
{
    uint64_t accesses = 0;
    uint64_t warmup = 0;
    double readFrac = 0.67;
    double faultRate = 0.0;
    double rowHitRate = 0.6;
    bool recovery = true;
    unsigned recoveryAttempts = 0; ///< 0 = engine default
    uint64_t patrolPeriod = 0;
    uint64_t seed = 0xE2E;

    // Bounded working set: 16 banks x 64 rows x 128 MTB columns
    // (~9 MB of modelled storage) keeps the rank model resident
    // while still spreading traffic across every bank.
    unsigned rowSpace = 64;
    unsigned colSpace = 128;

    /**
     * Lineage stream index for fault-ID derivation: the shard number
     * in campaign mode, 0 for the single canonical stream.  Keeps
     * per-shard fault IDs collision-free under one ledger.
     */
    uint64_t lineageStream = 0;

    /**
     * Long-horizon aging mode: this many wearing fault sites (weak
     * rows, dying chips, marginal CA pins, round-robin) switch on
     * front-loaded across the first half of the measured stream and
     * keep disturbing until the end.  Single-stream only.
     */
    uint64_t agingSites = 0;
    /** Feed HealthMonitor recommendations back into the stack. */
    bool mitigate = false;
};

/**
 * One wearing fault site of the aging mode.  Unlike the transient
 * per-edge fault stream, a site persists from its activation access
 * to the end of the pass, modelling the time-varying arrival and
 * accumulation of real DRAM faults: a weak row disturbs a data bit on
 * every read of that row, a dying chip disturbs its own pins on a
 * fraction of all reads, and a marginal CA pin flips command edges.
 */
struct AgingSite
{
    enum class Kind
    {
        Row,  ///< weak row: one flipped data bit per read of the row
        Chip, ///< dying x4 chip: flips its own pins across all banks
        Pin,  ///< marginal CA pin: command-edge flips (alert family)
    };
    Kind kind = Kind::Row;
    unsigned bank = 0; ///< Row
    unsigned row = 0;  ///< Row
    unsigned chip = 0; ///< Chip
    Pin pin{};         ///< Pin
    uint64_t activateAt = 0; ///< measured-access ordinal
    std::string label;       ///< lineage site ("row:b3:r17", ...)
};

/** Per-read disturbance odds of one wearing-chip site. */
constexpr double agingChipRate = 0.001;
/** Per-command-edge disturbance odds of one marginal CA pin. */
constexpr double agingPinRate = 0.0008;

/**
 * The deterministic aging plan for a mix: site kinds round-robin
 * Row/Chip/Pin, coordinates drawn from a dedicated RNG stream
 * (distinct coordinates per kind so each site is separately
 * scoreable), activation front-loaded so every site is wearing by the
 * run's halfway point and the back half accumulates symptoms.
 */
std::vector<AgingSite>
agingPlan(const MixConfig &mix, const Geometry &geom, bool parPin)
{
    std::vector<AgingSite> sites;
    if (!mix.agingSites)
        return sites;
    Rng rng(mix.seed ^ 0xA61A6);
    const std::vector<Pin> pins = injectablePins(parPin);
    char label[48];
    for (uint64_t i = 0; i < mix.agingSites; ++i) {
        AgingSite s;
        switch (i % 3) {
          case 0:
            s.kind = AgingSite::Kind::Row;
            // Distinct banks (a few re-rolls) keep one weak row per
            // bank sketch, so each site is independently inferable.
            for (unsigned tries = 0; tries < 64; ++tries) {
                s.bank = static_cast<unsigned>(rng.below(geom.numBanks()));
                s.row = static_cast<unsigned>(rng.below(mix.rowSpace));
                bool dup = false;
                for (const AgingSite &o : sites)
                    dup |= o.kind == s.kind && o.bank == s.bank;
                if (!dup)
                    break;
            }
            std::snprintf(label, sizeof(label), "row:b%u:r%u", s.bank,
                          s.row);
            break;
          case 1:
            s.kind = AgingSite::Kind::Chip;
            for (unsigned tries = 0; tries < 64; ++tries) {
                s.chip = static_cast<unsigned>(rng.below(Burst::numChips));
                bool dup = false;
                for (const AgingSite &o : sites)
                    dup |= o.kind == s.kind && o.chip == s.chip;
                if (!dup)
                    break;
            }
            std::snprintf(label, sizeof(label), "chip:%u", s.chip);
            break;
          default:
            s.kind = AgingSite::Kind::Pin;
            for (unsigned tries = 0; tries < 64; ++tries) {
                s.pin = pins[rng.below(pins.size())];
                bool dup = false;
                for (const AgingSite &o : sites)
                    dup |= o.kind == s.kind && o.pin == s.pin;
                if (!dup)
                    break;
            }
            std::snprintf(label, sizeof(label), "pin:%s",
                          pinName(s.pin).c_str());
            break;
        }
        s.activateAt = i * mix.accesses / (2 * mix.agingSites);
        s.label = label;
        sites.push_back(s);
    }
    return sites;
}

struct PassResult
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t detections = 0;
    uint64_t dues = 0;
    uint64_t corrected = 0;
    double elapsedNs = 0.0;
    obs::Histogram latency{"ns_per_access"};
    RecoveryStats recovery;

    double
    accessesPerSec() const
    {
        const uint64_t n = reads + writes;
        return elapsedNs > 0.0 ? static_cast<double>(n) * 1e9 / elapsedNs
                               : 0.0;
    }
};

/**
 * Run one pass of the access mix; @p observer may be nullptr.
 *
 * With @p ledger attached, every corruption the live fault stream
 * injects opens a per-fault lineage record (fault IDs derived from the
 * mix seed, the lineage stream, and the injection ordinal) that is
 * resolved at the end of the access it rode: Recovered / Detected when
 * a mechanism fired, Masked otherwise (without a golden run, an
 * undetected CA flip that changes nothing is indistinguishable from a
 * benign one — the campaign benches own the SDC accounting).  The
 * fault context is stamped onto every trace event the stack emits
 * while the fault is live.  The ledger never touches the RNG streams,
 * so hot and instrumented passes stay access-identical.
 *
 * In aging mode (mix.agingSites > 0) the pass additionally installs
 * the wearing-site hooks from agingPlan(): a read-disturb model on
 * the rank for weak rows and dying chips, plus marginal CA pins in
 * the edge corruptor.  Each site opens a lineage record at activation
 * and resolves at end of pass from what was observably detected.
 * With @p monitor given and mix.mitigate set, the pass drains the
 * monitor's recommended actions after every access and feeds them
 * back into the stack (raise patrol rate / retire row / quarantine);
 * the hot pass runs without a monitor, so it doubles as the
 * no-mitigation baseline over the identical fault schedule.
 */
PassResult
runPass(const MixConfig &mix, obs::Observer *observer,
        obs::LineageLedger *ledger = nullptr,
        ras::HealthMonitor *monitor = nullptr)
{
    StackConfig cfg;
    cfg.mech = Mechanisms::forLevel(ProtectionLevel::Aiecc);
    cfg.scrubOnCorrection = true;
    cfg.seed = mix.seed;
    cfg.recovery.enabled = mix.recovery;
    if (mix.recoveryAttempts)
        cfg.recovery.maxAttempts = mix.recoveryAttempts;
    cfg.recovery.patrolPeriod = mix.patrolPeriod;
    cfg.observer = observer;
    ProtectionStack stack(cfg);

    const Geometry &geom = stack.geometry();

    // ---- aging fault sites (time-varying arrival) -----------------
    const std::vector<AgingSite> aging =
        agingPlan(mix, geom, cfg.mech.parPinPresent());
    size_t agingActive = 0; ///< activated prefix of `aging`
    std::vector<uint64_t> siteObs(aging.size(), 0);
    std::vector<uint64_t> agingIds(aging.size(), 0);
    Rng agingRng(mix.seed ^ 0xA91D6);
    bool agingPinSites = false;
    bool agingArraySites = false;
    for (const AgingSite &s : aging) {
        if (s.kind == AgingSite::Kind::Pin)
            agingPinSites = true;
        else
            agingArraySites = true;
    }
    if (agingArraySites) {
        stack.rank().setReadDisturb(
            [&aging, &agingActive, &agingRng,
             &geom](const MtbAddress &addr, Burst &out) {
                for (size_t k = 0; k < agingActive; ++k) {
                    const AgingSite &s = aging[k];
                    if (s.kind == AgingSite::Kind::Row) {
                        if (addr.row != s.row ||
                            addr.flatBank(geom) != s.bank)
                            continue;
                        const unsigned pin = static_cast<unsigned>(
                            agingRng.below(Burst::dataPins));
                        const unsigned beat = static_cast<unsigned>(
                            agingRng.below(Burst::numBeats));
                        out.setBit(pin, beat, !out.getBit(pin, beat));
                    } else if (s.kind == AgingSite::Kind::Chip &&
                               agingRng.chance(agingChipRate)) {
                        const unsigned pin =
                            s.chip * Burst::pinsPerChip +
                            static_cast<unsigned>(
                                agingRng.below(Burst::pinsPerChip));
                        const unsigned beat = static_cast<unsigned>(
                            agingRng.below(Burst::numBeats));
                        out.setBit(pin, beat, !out.getBit(pin, beat));
                    }
                }
            });
    }

    Rng faultRng(mix.seed ^ 0xFA017);
    // Live-stream lineage state: one fault window open at a time;
    // flips landing while a window is open ride the same record.
    uint64_t faultOrdinal = 0;
    uint64_t liveFaultId = 0;
    Cycle liveInjectCycle = 0;
    std::string liveFaultSite;
    const uint64_t faultSalt =
        mix.seed ^ obs::lineageHash("e2e-live-stream");
    if (mix.faultRate > 0.0 || agingPinSites) {
        const double rate = mix.faultRate;
        auto pins = injectablePins(cfg.mech.parPinPresent());
        stack.setPinCorruptor(
            [rate, pins, &faultRng, &stack, &mix, ledger, faultSalt,
             &faultOrdinal, &liveFaultId, &liveInjectCycle,
             &liveFaultSite, &aging, &agingActive,
             &agingRng](uint64_t, PinWord &word) {
                // Marginal CA pins disturb edges independently of the
                // transient stream; their lifetime lineage records are
                // owned by the aging bookkeeping, not the live window.
                for (size_t k = 0; k < agingActive; ++k) {
                    const AgingSite &s = aging[k];
                    if (s.kind == AgingSite::Kind::Pin &&
                        agingRng.chance(agingPinRate))
                        word.flip(s.pin);
                }
                if (rate <= 0.0 || !faultRng.chance(rate))
                    return;
                const Pin pin = pins[faultRng.below(pins.size())];
                word.flip(pin);
                if (!ledger || liveFaultId != 0)
                    return; // unledgered, or riding the open window
                ++faultOrdinal;
                liveFaultId = obs::deriveFaultId(
                    faultSalt, mix.lineageStream, faultOrdinal);
                liveInjectCycle = stack.controller().now();
                liveFaultSite = pinName(pin);
                ledger->recordInjection(liveFaultId,
                                        obs::FaultKind::Ccca,
                                        liveFaultSite);
                stack.setFaultContext(liveFaultId);
            });
    }
    Rng rng(mix.seed);
    std::vector<unsigned> lastRow(geom.numBanks(), 0);
    BitVec payload(Burst::dataBits);
    for (size_t i = 0; i < payload.size(); i += 64)
        payload.setField(i, 64, rng.next());

    PassResult out;
    const auto nextAddr = [&]() {
        MtbAddress addr;
        addr.bg = static_cast<unsigned>(rng.below(geom.numBankGroups()));
        addr.ba = static_cast<unsigned>(rng.below(geom.banksPerGroup()));
        const unsigned bank = addr.flatBank(geom);
        addr.row = rng.chance(mix.rowHitRate)
                       ? lastRow[bank]
                       : static_cast<unsigned>(rng.below(mix.rowSpace));
        lastRow[bank] = addr.row;
        addr.col = static_cast<unsigned>(rng.below(mix.colSpace));
        return addr;
    };

    // Mitigation scratch, reserved outside the access loop.
    std::vector<ras::RecommendedAction> mitigations;
    mitigations.reserve(8);
    unsigned sparesUsed = 0;

    const auto doAccess = [&](bool measured) {
        const MtbAddress addr = nextAddr();
        const bool isRead = rng.chance(mix.readFrac);
        const uint64_t attemptsBefore = stack.recoveryStats().attempts;
        const uint64_t recoveredBefore = stack.recoveryStats().recovered;
        const auto begin = std::chrono::steady_clock::now();
        if (isRead) {
            const ReadOutcome got = stack.read(addr);
            if (measured) {
                out.detections += got.detected ? 1 : 0;
                out.corrected += got.corrected ? 1 : 0;
                out.dues += got.due ? 1 : 0;
            }
            // Wearing-site symptom attribution (prediction ground
            // truth): a weak row's detection is its own address, a
            // dying chip's is a corrected symbol on its chip.
            for (size_t k = 0; k < agingActive; ++k) {
                const AgingSite &s = aging[k];
                if (s.kind == AgingSite::Kind::Row) {
                    if (got.detected && addr.row == s.row &&
                        addr.flatBank(geom) == s.bank)
                        ++siteObs[k];
                } else if (s.kind == AgingSite::Kind::Chip) {
                    if (got.correctedChips & (1u << s.chip))
                        ++siteObs[k];
                }
            }
        } else {
            // Vary the payload cheaply so writes are not all equal.
            payload.setField(0, 64, rng.next());
            stack.write(addr, payload);
        }
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        if (measured) {
            out.latency.sample(ns > 0 ? static_cast<uint64_t>(ns) : 0);
            (isRead ? out.reads : out.writes) += 1;
        }
        // Resolve the live fault window (if one opened during this
        // access) from what the mechanisms observably did with it.
        if (ledger && liveFaultId != 0) {
            uint32_t observations = 0;
            std::string firstMech;
            for (const DetectionEvent &ev : stack.detections()) {
                if (ev.faultId != liveFaultId)
                    continue;
                ++observations;
                if (firstMech.empty())
                    firstMech = mechanismName(ev.mech);
            }
            const uint64_t attempts =
                stack.recoveryStats().attempts - attemptsBefore;
            const bool recovered =
                stack.recoveryStats().recovered > recoveredBefore;
            obs::FaultTerminal terminal = obs::FaultTerminal::Masked;
            if (observations)
                terminal = recovered ? obs::FaultTerminal::Recovered
                                     : obs::FaultTerminal::Detected;
            ledger->resolve(liveFaultId, terminal, firstMech,
                            observations,
                            static_cast<uint32_t>(attempts));
            if (observer && observer->tracing()) {
                obs::TraceEvent inj;
                inj.kind = obs::EventKind::FaultInject;
                inj.cycle = liveInjectCycle;
                inj.label = liveFaultSite;
                inj.value = faultOrdinal;
                inj.detail = obs::faultKindName(obs::FaultKind::Ccca);
                inj.faultId = liveFaultId;
                observer->emit(inj);
                obs::TraceEvent res;
                res.kind = obs::EventKind::FaultResolve;
                res.cycle = stack.controller().now();
                res.label = obs::faultTerminalName(terminal);
                res.value = attempts;
                if (!firstMech.empty())
                    res.detail = "first=" + firstMech;
                res.faultId = liveFaultId;
                observer->emit(res);
            }
            liveFaultId = 0;
            stack.setFaultContext(0);
        }
        // Marginal CA pins announce themselves through the alert
        // families, not an address; attribution is class-level (every
        // active pin site shares the evidence).
        if (agingPinSites && agingActive) {
            bool alert = false;
            for (const DetectionEvent &ev : stack.detections())
                alert |= ev.mech != Mechanism::Decc &&
                         ev.mech != Mechanism::EDecc;
            if (alert)
                for (size_t k = 0; k < agingActive; ++k)
                    if (aging[k].kind == AgingSite::Kind::Pin)
                        ++siteObs[k];
        }
        // Predictive mitigation: apply whatever the monitor
        // recommended while observing this access.
        if (monitor && mix.mitigate) {
            mitigations.clear();
            if (monitor->drainActions(mitigations)) {
                for (const ras::RecommendedAction &a : mitigations) {
                    switch (a.kind) {
                      case ras::ActionKind::RaisePatrol: {
                        const uint64_t cur = stack.patrolPeriod();
                        stack.setPatrolPeriod(
                            cur ? std::max<uint64_t>(8, cur / 4) : 64);
                        break;
                      }
                      case ras::ActionKind::RetireRow:
                        // Spares live above the bench's bounded row
                        // working set, so they are otherwise untouched.
                        stack.retireRow(a.bank, a.row,
                                        mix.rowSpace + sparesUsed++);
                        break;
                      case ras::ActionKind::QuarantineBank:
                        stack.recovery().adviseQuarantine(
                            a.bank, stack.controller().now());
                        break;
                    }
                }
            }
        }
        // The detection log is for campaign introspection; keep it
        // bounded on long runs.
        stack.clearDetections();
    };

    // A wearing site starts its lifetime lineage record (and trace
    // event) the moment it activates; resolution is at end of pass.
    const uint64_t agingSalt = mix.seed ^ obs::lineageHash("e2e-aging");
    const auto activateSite = [&](size_t k) {
        const AgingSite &s = aging[k];
        const obs::FaultKind fk = s.kind == AgingSite::Kind::Pin
                                      ? obs::FaultKind::Ccca
                                      : obs::FaultKind::Data;
        if (ledger) {
            agingIds[k] = obs::deriveFaultId(agingSalt,
                                             mix.lineageStream, k + 1);
            ledger->recordInjection(agingIds[k], fk, s.label);
        }
        if (observer && observer->tracing()) {
            obs::TraceEvent inj;
            inj.kind = obs::EventKind::FaultInject;
            inj.cycle = stack.controller().now();
            inj.label = s.label;
            inj.value = k;
            inj.detail = obs::faultKindName(fk);
            inj.faultId = agingIds[k];
            observer->emit(inj);
        }
    };

    for (uint64_t i = 0; i < mix.warmup; ++i)
        doAccess(false);
    const auto begin = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < mix.accesses; ++i) {
        while (agingActive < aging.size() &&
               aging[agingActive].activateAt <= i)
            activateSite(agingActive++);
        doAccess(true);
    }
    out.elapsedNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin)
            .count());

    // Wearing sites reach their terminal from what was observable:
    // corrected in place (rows/chips), absorbed by bounded retry
    // (pins), or nothing ever saw the site age.
    for (size_t k = 0; k < agingActive; ++k) {
        const AgingSite &s = aging[k];
        obs::FaultTerminal terminal = obs::FaultTerminal::Masked;
        if (siteObs[k])
            terminal = s.kind == AgingSite::Kind::Pin
                           ? obs::FaultTerminal::Recovered
                           : obs::FaultTerminal::Corrected;
        if (ledger)
            ledger->resolve(agingIds[k], terminal, "",
                            static_cast<uint32_t>(std::min<uint64_t>(
                                siteObs[k], 0xFFFFFFFFull)),
                            0);
        if (observer && observer->tracing()) {
            obs::TraceEvent res;
            res.kind = obs::EventKind::FaultResolve;
            res.cycle = stack.controller().now();
            res.label = obs::faultTerminalName(terminal);
            res.value = siteObs[k];
            res.detail = s.label;
            res.faultId = agingIds[k];
            observer->emit(res);
        }
    }

    out.recovery = stack.recoveryStats();
    if (observer)
        observer->flush();
    return out;
}

/** Fold @p shard's pass output into @p into (shard-order merge). */
void
mergePass(PassResult &into, const PassResult &shard)
{
    into.reads += shard.reads;
    into.writes += shard.writes;
    into.detections += shard.detections;
    into.dues += shard.dues;
    into.corrected += shard.corrected;
    into.elapsedNs += shard.elapsedNs;
    into.latency.merge(shard.latency);
    into.recovery.episodes += shard.recovery.episodes;
    into.recovery.attempts += shard.recovery.attempts;
    into.recovery.recovered += shard.recovery.recovered;
    into.recovery.recoveredFirstTry += shard.recovery.recoveredFirstTry;
    into.recovery.recoveredAfterRetries +=
        shard.recovery.recoveredAfterRetries;
    into.recovery.exhausted += shard.recovery.exhausted;
    into.recovery.wrReplays += shard.recovery.wrReplays;
    into.recovery.rdReissues += shard.recovery.rdReissues;
    into.recovery.wrtResyncs += shard.recovery.wrtResyncs;
    into.recovery.quarantines += shard.recovery.quarantines;
    into.recovery.rankDegrades += shard.recovery.rankDegrades;
    into.recovery.patrolReads += shard.recovery.patrolReads;
    into.recovery.patrolScrubs += shard.recovery.patrolScrubs;
}

/**
 * Byte-stable text form of a merged PassResult for checkpoint
 * sections: the scalar counters on one line (elapsedNs as whole
 * nanoseconds — sub-ns precision is below clock resolution and the
 * field is timing-only), the latency histogram state on the next.
 */
std::string
serializePass(const PassResult &p)
{
    std::ostringstream out;
    out << p.reads << ' ' << p.writes << ' ' << p.detections << ' '
        << p.dues << ' ' << p.corrected << ' '
        << static_cast<uint64_t>(p.elapsedNs) << ' '
        << p.recovery.episodes << ' ' << p.recovery.attempts << ' '
        << p.recovery.recovered << ' ' << p.recovery.recoveredFirstTry
        << ' ' << p.recovery.recoveredAfterRetries << ' '
        << p.recovery.exhausted << ' ' << p.recovery.wrReplays << ' '
        << p.recovery.rdReissues << ' ' << p.recovery.wrtResyncs << ' '
        << p.recovery.quarantines << ' ' << p.recovery.rankDegrades
        << ' ' << p.recovery.patrolReads << ' '
        << p.recovery.patrolScrubs << '\n'
        << p.latency.serializeState() << '\n';
    return out.str();
}

void
deserializePass(PassResult &p, const std::string &text)
{
    std::istringstream in(text);
    uint64_t elapsed = 0;
    in >> p.reads >> p.writes >> p.detections >> p.dues >> p.corrected >>
        elapsed >> p.recovery.episodes >> p.recovery.attempts >>
        p.recovery.recovered >> p.recovery.recoveredFirstTry >>
        p.recovery.recoveredAfterRetries >> p.recovery.exhausted >>
        p.recovery.wrReplays >> p.recovery.rdReissues >>
        p.recovery.wrtResyncs >> p.recovery.quarantines >>
        p.recovery.rankDegrades >> p.recovery.patrolReads >>
        p.recovery.patrolScrubs;
    AIECC_ASSERT(static_cast<bool>(in), "pass state: truncated scalars");
    p.elapsedNs = static_cast<double>(elapsed);
    std::string histState;
    std::getline(in, histState); // consume the scalar line's newline
    std::getline(in, histState);
    p.latency.deserializeState(histState);
}

/**
 * Sharded campaign pass: the access budget splits into fixed-size
 * shards, each running its own ProtectionStack over its own RNG
 * stream (Rng::forStream(mix.seed, shard)), executed on @p jobs
 * threads and merged in shard order — so the merged counts are
 * bit-identical for any jobs value.  @p stats / @p profile, when
 * given, receive shard-local registries merged after the join;
 * @p shard0Trace, when given, records shard 0's event stream.
 * elapsedNs of the returned result is the wall clock of the whole
 * parallel region (the number throughput is computed from).
 */
/** Campaign-mode shard size (accesses per shard); output-affecting. */
constexpr uint64_t campaignShardSize = 25000;

/** Shard-local state slots for one campaign pass (merge inputs). */
struct CampaignSlots
{
    explicit CampaignSlots(uint64_t shards)
        : parts(shards), stats(shards), prof(shards), cost(shards),
          ledgers(shards), rasMon(shards)
    {
    }

    std::vector<PassResult> parts;
    std::vector<std::unique_ptr<obs::StatsRegistry>> stats;
    std::vector<std::unique_ptr<obs::ProfileRegistry>> prof;
    std::vector<std::unique_ptr<obs::CostAccountant>> cost;
    std::vector<std::unique_ptr<obs::LineageLedger>> ledgers;
    std::vector<std::unique_ptr<ras::HealthMonitor>> rasMon;
};

/** Run shard @p shard of the campaign into its slots (worker-side). */
void
runOneShard(const MixConfig &mix, uint64_t shard, CampaignSlots &slots,
            bool wantStats, bool wantProfile, obs::TraceSink *shard0Trace,
            const obs::CostAccountant *cost, bool wantLedger,
            bool wantRas)
{
    MixConfig sub = mix;
    sub.accesses = shardLength(mix.accesses, campaignShardSize, shard);
    sub.warmup = sub.accesses / 20 + 500;
    // One next() hop decouples the shard's access stream from the
    // raw (seed, shard) pair the derivation mixes.
    sub.seed = Rng::forStream(mix.seed, shard).next();
    // Fault IDs stay unique across shards under one ledger.
    sub.lineageStream = shard;

    obs::Observer shardObs;
    bool observed = false;
    if (wantStats) {
        slots.stats[shard] =
            std::unique_ptr<obs::StatsRegistry>(new obs::StatsRegistry);
        shardObs.setStats(slots.stats[shard].get());
        observed = true;
    }
    if (wantProfile) {
        slots.prof[shard] = std::unique_ptr<obs::ProfileRegistry>(
            new obs::ProfileRegistry);
        shardObs.setProfile(slots.prof[shard].get());
        observed = true;
    }
    if (cost) {
        // Same model, private integer tallies: the shard-order merge
        // is bit-identical for any jobs value.
        slots.cost[shard] = std::unique_ptr<obs::CostAccountant>(
            new obs::CostAccountant(cost->model()));
        shardObs.setCost(slots.cost[shard].get());
        observed = true;
    }
    if (shard == 0 && shard0Trace) {
        shardObs.addSink(shard0Trace);
        observed = true;
    }
    if (wantRas) {
        // Shard-local monitor, merged in shard order after the join —
        // the merged `ras` section is bit-identical for any --jobs.
        // Attached after the trace sink so emitted RasHealth events
        // trail their triggering symptom in shard 0's trace.
        slots.rasMon[shard] = std::unique_ptr<ras::HealthMonitor>(
            new ras::HealthMonitor);
        shardObs.addSink(slots.rasMon[shard].get());
        slots.rasMon[shard]->setObserver(&shardObs);
        observed = true;
    }
    obs::LineageLedger *shardLedger = nullptr;
    if (wantLedger) {
        slots.ledgers[shard] = std::unique_ptr<obs::LineageLedger>(
            new obs::LineageLedger);
        shardLedger = slots.ledgers[shard].get();
    }
    slots.parts[shard] =
        runPass(sub, observed ? &shardObs : nullptr, shardLedger);
}

/** Fold shards [@p b, @p e) into the merge targets, in shard order. */
void
mergeShardRange(CampaignSlots &slots, uint64_t b, uint64_t e,
                PassResult &merged, obs::StatsRegistry *stats,
                obs::ProfileRegistry *profile, obs::CostAccountant *cost,
                obs::LineageLedger *ledger, ras::HealthMonitor *rasMon)
{
    for (uint64_t shard = b; shard < e; ++shard) {
        mergePass(merged, slots.parts[shard]);
        if (stats && slots.stats[shard])
            stats->merge(*slots.stats[shard]);
        if (profile && slots.prof[shard])
            profile->merge(*slots.prof[shard]);
        if (cost && slots.cost[shard])
            cost->merge(*slots.cost[shard]);
        if (ledger && slots.ledgers[shard])
            ledger->merge(*slots.ledgers[shard]);
        if (rasMon && slots.rasMon[shard])
            rasMon->merge(*slots.rasMon[shard]);
    }
}

PassResult
runCampaignPass(const MixConfig &mix, unsigned jobs,
                obs::StatsRegistry *stats, obs::ProfileRegistry *profile,
                obs::TraceSink *shard0Trace,
                obs::CostAccountant *cost = nullptr,
                obs::LineageLedger *ledger = nullptr,
                ras::HealthMonitor *rasMon = nullptr,
                const std::function<void(uint64_t)> &progress = {})
{
    const uint64_t shards = shardCount(mix.accesses, campaignShardSize);
    CampaignSlots slots(shards);

    const auto begin = std::chrono::steady_clock::now();
    runShards(
        shards, jobs,
        [&](uint64_t shard) {
            runOneShard(mix, shard, slots, stats != nullptr,
                        profile != nullptr, shard0Trace, cost,
                        ledger != nullptr, rasMon != nullptr);
        },
        progress);
    const double wallNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin)
            .count());

    PassResult merged;
    mergeShardRange(slots, 0, shards, merged, stats, profile, cost,
                    ledger, rasMon);
    merged.elapsedNs = wallNs;
    return merged;
}

/**
 * The checkpointed campaign pass: same shard bodies and shard-order
 * merge as runCampaignPass(), executed in durable batches through
 * runShardsCheckpointed().  @p merged and the registries carry the
 * committed prefix in (restored by the caller on resume) and receive
 * each batch's merge before @p persist(batchEnd) runs — so what
 * persist() serializes is always exactly the committed prefix.
 * merged.elapsedNs accumulates the wall clock of this session's
 * batches on top of whatever earlier sessions recorded (timing-only;
 * never compared).
 */
RunStatus
runCampaignPassCheckpointed(
    const MixConfig &mix, unsigned jobs, uint64_t batch,
    uint64_t &nextShard, PassResult &merged, obs::StatsRegistry *stats,
    obs::ProfileRegistry *profile, obs::TraceSink *shard0Trace,
    obs::CostAccountant *cost, obs::LineageLedger *ledger,
    ras::HealthMonitor *rasMon,
    const std::function<void(uint64_t)> &persist,
    const std::function<void(uint64_t)> &progress)
{
    const uint64_t shards = shardCount(mix.accesses, campaignShardSize);
    CampaignSlots slots(shards);

    // Accumulated wall clock rides inside merged.elapsedNs between
    // sessions; keep it out of the merge so mergePass() can keep
    // summing per-shard times we overwrite below.
    double wallNs = merged.elapsedNs;
    auto batchBegin = std::chrono::steady_clock::now();
    return runShardsCheckpointed(
        shards, batch, jobs, nextShard,
        [&](uint64_t shard) {
            runOneShard(mix, shard, slots, stats != nullptr,
                        profile != nullptr, shard0Trace, cost,
                        ledger != nullptr, rasMon != nullptr);
        },
        [&](uint64_t b, uint64_t e) {
            wallNs += static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - batchBegin)
                    .count());
            mergeShardRange(slots, b, e, merged, stats, profile, cost,
                            ledger, rasMon);
            merged.elapsedNs = wallNs;
            persist(e);
            // Exclude persist (checkpoint fsync) time from the wall.
            batchBegin = std::chrono::steady_clock::now();
        },
        progress);
}

void
printLatencyRow(const char *name, const obs::Histogram &h)
{
    std::printf("  %-18s %10.0f %10.0f %10.0f %10.0f %10.0f\n", name,
                h.mean(), h.quantile(0.50), h.quantile(0.90),
                h.quantile(0.99), static_cast<double>(h.max()));
}

} // namespace
} // namespace aiecc

int
main(int argc, char **argv)
{
    using namespace aiecc;
    const bench::Options opt = bench::parse(argc, argv);

    MixConfig mix;
    mix.accesses = opt.trials ? opt.trials : (opt.quick ? 20000 : 200000);
    mix.warmup = mix.accesses / 20 + 500;
    mix.readFrac = opt.readFrac;
    mix.faultRate = opt.faultRate;
    mix.recovery = !opt.noRecovery;
    mix.recoveryAttempts = opt.recoveryAttempts;
    mix.patrolPeriod = opt.recoveryPatrol;
    mix.agingSites = opt.aging;
    mix.mitigate = opt.mitigate;

    // --jobs given => sharded campaign mode; absent => the canonical
    // single-stream run (the cross-machine perf anchor CI compares).
    const bool campaignMode = opt.jobs != 0;
    const uint64_t shards =
        campaignMode ? shardCount(mix.accesses, campaignShardSize) : 0;
    if (!opt.checkpointPath.empty() && !campaignMode) {
        std::fprintf(stderr, "--checkpoint requires the sharded "
                             "campaign; add --jobs N\n");
        return 2;
    }
    if ((mix.agingSites || mix.mitigate) && campaignMode) {
        // A wearing site's lifetime spans the whole stream; shards
        // would each age independently and the mitigation feedback
        // loop needs one continuous stack.
        std::fprintf(stderr, "--aging/--mitigate require the "
                             "single-stream run; drop --jobs\n");
        return 2;
    }
    const std::string campaignId =
        bench::campaignIdFor(opt, "e2e_throughput");

    obs::HeartbeatEmitter hb;
    bench::openHeartbeat(hb, opt, campaignId);
    // Two units (hot pass, instrumented pass) of equal shard count;
    // single-stream mode reports each whole pass as one "shard".
    const uint64_t hbShardsPerPass = campaignMode ? shards : 1;
    hb.setTotals(2 * hbShardsPerPass, 2 * mix.accesses);
    // Measured accesses behind a global (two-pass) shard count.
    const auto trialsForShards = [&](uint64_t done) {
        const uint64_t firstPass = std::min(done, hbShardsPerPass);
        const uint64_t secondPass = done - firstPass;
        const auto accessesFor = [&](uint64_t passShards) {
            if (!campaignMode)
                return passShards ? mix.accesses : uint64_t(0);
            return std::min(passShards * campaignShardSize,
                            mix.accesses);
        };
        return accessesFor(firstPass) + accessesFor(secondPass);
    };
    const auto hbProgressFor = [&](uint64_t doneBase) {
        if (!hb.enabled())
            return std::function<void(uint64_t)>();
        return std::function<void(uint64_t)>([&, doneBase](
                                                 uint64_t done) {
            hb.tick(doneBase + done, trialsForShards(doneBase + done));
        });
    };

    bench::banner("End-to-end throughput: full AIECC stack, "
                  "high-level access mix");
    std::printf("accesses: %llu (+%llu warmup)   read fraction: %.2f   "
                "fault rate: %g/edge   recovery: %s\n",
                static_cast<unsigned long long>(mix.accesses),
                static_cast<unsigned long long>(mix.warmup), mix.readFrac,
                mix.faultRate, mix.recovery ? "on" : "off");
    if (campaignMode) {
        std::printf("mode: sharded campaign — %llu shard(s) of %llu "
                    "accesses on %u worker thread(s)\n\n",
                    static_cast<unsigned long long>(shards),
                    static_cast<unsigned long long>(campaignShardSize),
                    resolveJobs(opt.jobs));
    } else {
        std::printf("mode: single stream (canonical; use --jobs N for "
                    "the sharded campaign)\n\n");
    }

    // Pass state.  Pass 1 — hot — is the canonical numbers with no
    // instrumentation at all; pass 2 — instrumented — replays the
    // same seeds and stream plus stats, profiling, cost attribution,
    // per-fault lineage for the live fault stream, and the optional
    // JSONL trace.
    PassResult hot;
    PassResult inst;
    obs::StatsRegistry stats;
    obs::ProfileRegistry profile;
    obs::CostAccountant cost(
        makeCostModel(Mechanisms::forLevel(ProtectionLevel::Aiecc)));
    obs::LineageLedger lineage;
    obs::LineageLedger *ledger =
        (mix.faultRate > 0.0 || mix.agingSites) ? &lineage : nullptr;
    obs::Observer observer(&stats);
    observer.setProfile(&profile);
    observer.setCost(&cost);
    std::unique_ptr<obs::JsonlTraceSink> traceSink;
    if (!opt.tracePath.empty()) {
        traceSink = std::make_unique<obs::JsonlTraceSink>(opt.tracePath);
        if (!traceSink->ok()) {
            std::fprintf(stderr, "cannot write trace: %s\n",
                         opt.tracePath.c_str());
            return 1;
        }
        observer.addSink(traceSink.get());
    }

    // RAS health telemetry rides the instrumented pass, always on for
    // this bench.  The monitor subscribes after the trace sink so the
    // RasHealth/RasAction events it emits trail their triggering
    // symptom in the file; its snapshots ride the heartbeat too.
    ras::HealthMonitor monitor;
    observer.addSink(&monitor);
    monitor.setObserver(&observer);
    hb.setPayload(
        [&monitor](obs::JsonWriter &w) { monitor.writeHeartbeat(w); });

    // ---- checkpointed campaign (DESIGN.md §12) --------------------
    // Two units in fixed order: unit 0 = hot pass, unit 1 =
    // instrumented pass.  Each unit's merged state persists after
    // every committed batch; unit 0's sections stay in the file while
    // unit 1 runs, so a resume at any point reloads both.
    bench::Checkpointer cp(opt, campaignId);
    unsigned resumeUnit = 0;
    uint64_t resumeShard = 0;
    if (cp.resumed()) {
        CampaignCheckpoint &st = cp.state();
        if (st.has("cursor")) {
            std::istringstream in(st.get("cursor"));
            std::string tag1, tag2;
            in >> tag1 >> resumeUnit >> tag2 >> resumeShard;
        }
        if (st.has("pass:0"))
            deserializePass(hot, st.get("pass:0"));
        if (st.has("pass:1"))
            deserializePass(inst, st.get("pass:1"));
        if (st.has("stats"))
            stats.deserializeState(st.get("stats"));
        if (st.has("profile"))
            profile.deserializeState(st.get("profile"));
        if (st.has("cost"))
            cost.deserializeState(st.get("cost"));
        if (st.has("lineage"))
            lineage.deserializeState(st.get("lineage"));
        if (st.has("ras"))
            monitor.deserializeState(st.get("ras"));
    }
    auto persist = [&](unsigned unit, uint64_t nextShard) {
        if (!cp.enabled())
            return;
        CampaignCheckpoint &st = cp.state();
        st.set("cursor", "unit " + std::to_string(unit) + " shard " +
                             std::to_string(nextShard));
        st.set("pass:" + std::to_string(unit),
               serializePass(unit == 0 ? hot : inst));
        if (unit == 1) {
            st.set("stats", stats.serializeState());
            st.set("profile", profile.serializeState());
            st.set("cost", cost.serialize());
            st.set("lineage", lineage.serializeState());
            st.set("ras", monitor.serializeState());
        }
        cp.save("unit " + std::to_string(unit + 1) + "/2 (" +
                (unit == 0 ? "hot" : "instrumented") + " pass) shard " +
                std::to_string(nextShard));
    };

    // Campaign mode feeds the trace from shard 0 only — one writer,
    // and a stream a sequential shard-0 run would reproduce exactly.
    if (cp.enabled()) {
        const uint64_t batch = checkpointBatchShards(opt.jobs);
        for (unsigned unit = resumeUnit; unit < 2; ++unit) {
            uint64_t nextShard = (unit == resumeUnit) ? resumeShard : 0;
            hb.setNote(unit == 0 ? "hot pass" : "instrumented pass");
            const uint64_t doneBase = unit * shards;
            const RunStatus status =
                unit == 0
                    ? runCampaignPassCheckpointed(
                          mix, opt.jobs, batch, nextShard, hot, nullptr,
                          nullptr, nullptr, nullptr, nullptr, nullptr,
                          [&](uint64_t end) { persist(0, end); },
                          hbProgressFor(doneBase))
                    : runCampaignPassCheckpointed(
                          mix, opt.jobs, batch, nextShard, inst, &stats,
                          &profile, traceSink.get(), &cost, ledger,
                          &monitor,
                          [&](uint64_t end) { persist(1, end); },
                          hbProgressFor(doneBase));
            if (status == RunStatus::Interrupted) {
                const uint64_t done = doneBase + nextShard;
                hb.finalTick(done, trialsForShards(done));
                cp.exitInterrupted();
            }
        }
    } else if (campaignMode) {
        hb.setNote("hot pass");
        hot = runCampaignPass(mix, opt.jobs, nullptr, nullptr, nullptr,
                              nullptr, nullptr, nullptr,
                              hbProgressFor(0));
        hb.setNote("instrumented pass");
        inst = runCampaignPass(mix, opt.jobs, &stats, &profile,
                               traceSink.get(), &cost, ledger, &monitor,
                               hbProgressFor(shards));
    } else {
        hb.setNote("hot pass");
        hot = runPass(mix, nullptr);
        hb.tick(1, trialsForShards(1));
        hb.setNote("instrumented pass");
        inst = runPass(mix, &observer, ledger, &monitor);
    }
    hb.finalTick(2 * hbShardsPerPass, 2 * mix.accesses);

    std::printf("throughput (hot pass):    %12.0f accesses/sec\n",
                hot.accessesPerSec());
    std::printf("throughput (instrumented): %11.0f accesses/sec\n\n",
                inst.accessesPerSec());

    std::printf("  %-18s %10s %10s %10s %10s %10s\n", "ns/access",
                "mean", "p50", "p90", "p99", "max");
    printLatencyRow("hot", hot.latency);
    printLatencyRow("instrumented", inst.latency);

    std::printf("\noutcomes (hot pass): %llu detections, %llu corrected, "
                "%llu DUEs, %llu recovery episodes (%llu recovered, "
                "%llu exhausted)\n",
                static_cast<unsigned long long>(hot.detections),
                static_cast<unsigned long long>(hot.corrected),
                static_cast<unsigned long long>(hot.dues),
                static_cast<unsigned long long>(hot.recovery.episodes),
                static_cast<unsigned long long>(hot.recovery.recovered),
                static_cast<unsigned long long>(hot.recovery.exhausted));

    std::printf("\nper-mechanism wall-clock breakdown "
                "(instrumented pass):\n");
    std::printf("%s", profile.str().c_str());
    if (traceSink) {
        std::printf("\ntrace: %llu events -> %s (%llu dropped, "
                    "%llu IO errors)\n",
                    static_cast<unsigned long long>(traceSink->recorded()),
                    opt.tracePath.c_str(),
                    static_cast<unsigned long long>(traceSink->dropped()),
                    static_cast<unsigned long long>(traceSink->ioErrors()));
    }

    // ---- RAS health report + prediction scoring -------------------
    std::printf("\nRAS health (instrumented pass): rank %s, "
                "%u degraded / %u failing banks, %zu topology call(s), "
                "%llu action(s) recommended\n",
                ras::healthStateName(monitor.rankState()),
                monitor.degradedBanks(), monitor.failingBanks(),
                monitor.topologies().size(),
                static_cast<unsigned long long>(
                    monitor.actionCount(ras::ActionKind::RaisePatrol) +
                    monitor.actionCount(ras::ActionKind::RetireRow) +
                    monitor.actionCount(
                        ras::ActionKind::QuarantineBank)));

    bench::RasReport rasReport;
    rasReport.monitor = &monitor;
    if (mix.agingSites) {
        // Score the monitor's inferred topologies against the aging
        // plan (the lineage ground truth): a weak row must be called
        // as that (bank, row), a dying chip as that chip, a marginal
        // CA pin as a link fault (class-level — alerts carry no
        // address, so the pin itself is only diagnosable via eDECC).
        rasReport.hasPrediction = true;
        const auto plan = agingPlan(
            mix, Geometry{},
            Mechanisms::forLevel(ProtectionLevel::Aiecc).parPinPresent());
        char buf[64];
        for (const AgingSite &s : plan) {
            bench::RasReport::SiteScore sc;
            sc.site = s.label;
            switch (s.kind) {
              case AgingSite::Kind::Row: {
                const ras::TopologyCall call =
                    monitor.bankTopology(s.bank);
                sc.matched = call.kind == ras::Topology::Row &&
                             call.row == s.row;
                std::snprintf(buf, sizeof(buf), "%s b%u r%u",
                              ras::topologyName(call.kind), call.bank,
                              call.row);
                sc.inferred = buf;
                break;
              }
              case AgingSite::Kind::Chip: {
                sc.inferred = "none";
                for (const ras::TopologyCall &call :
                     monitor.chipTopologies()) {
                    if (call.chip != s.chip)
                        continue;
                    sc.matched = true;
                    std::snprintf(buf, sizeof(buf), "chip %u",
                                  call.chip);
                    sc.inferred = buf;
                    break;
                }
                break;
              }
              case AgingSite::Kind::Pin: {
                const ras::TopologyCall call = monitor.linkTopology();
                sc.matched = call.kind == ras::Topology::Link;
                sc.inferred =
                    !sc.matched ? "none"
                    : call.pin >= 0
                        ? "link pin " + pinName(static_cast<Pin>(call.pin))
                        : "link";
                break;
              }
            }
            rasReport.sites.push_back(sc);
        }
        std::printf("aging: %zu wearing site(s), topology inference "
                    "matched %llu (%.0f%%)\n",
                    rasReport.sites.size(),
                    static_cast<unsigned long long>(
                        rasReport.matchedSites()),
                    100.0 * rasReport.accuracy());
        for (const bench::RasReport::SiteScore &sc : rasReport.sites)
            std::printf("  %-14s -> %-18s %s\n", sc.site.c_str(),
                        sc.inferred.c_str(),
                        sc.matched ? "match" : "MISS");
    }
    if (mix.mitigate) {
        std::printf("\npredictive mitigation (instrumented vs "
                    "baseline hot pass): corrected %llu -> %llu, "
                    "DUEs %llu -> %llu, recovery episodes %llu -> "
                    "%llu\n",
                    static_cast<unsigned long long>(hot.corrected),
                    static_cast<unsigned long long>(inst.corrected),
                    static_cast<unsigned long long>(hot.dues),
                    static_cast<unsigned long long>(inst.dues),
                    static_cast<unsigned long long>(
                        hot.recovery.episodes),
                    static_cast<unsigned long long>(
                        inst.recovery.episodes));
    }

    if (ledger) {
        const obs::CoverageMatrix cov =
            obs::CoverageMatrix::fromLedger(lineage);
        const obs::CoverageMatrix::Audit audit = cov.audit();
        std::printf("\nlive fault stream: %llu faults injected, "
                    "%llu unaccounted, ledger digest %016llx\n",
                    static_cast<unsigned long long>(audit.injected),
                    static_cast<unsigned long long>(audit.unaccounted),
                    static_cast<unsigned long long>(lineage.digest()));
        if (!audit.ok) {
            for (const std::string &v : audit.violations)
                std::fprintf(stderr, "coverage audit: %s\n", v.c_str());
            return 1;
        }
    }

    // Per-access allocation report (DESIGN.md §13): the instrumented
    // pass is the one whose scopes attribute allocations, so the
    // allocs_per_access denominator is every access it drove —
    // including warmup, which the scope timers sample too.
    uint64_t profiledAccesses = 0;
    if (campaignMode) {
        for (uint64_t shard = 0; shard < shards; ++shard) {
            const uint64_t len =
                shardLength(mix.accesses, campaignShardSize, shard);
            profiledAccesses += len + len / 20 + 500;
        }
    } else {
        profiledAccesses = mix.accesses + mix.warmup;
    }
    bench::allocReport().profile = &profile;
    bench::allocReport().accesses = profiledAccesses;

    bench::CostEntries costs;
    costs.emplace_back("aiecc", cost);

    bench::writeJsonArtifact(opt, "bench_e2e_throughput", costs, {},
                             rasReport, [&](obs::JsonWriter &w) {
        w.beginObject();
        w.kv("mode", campaignMode ? "campaign" : "single_stream");
        if (campaignMode) {
            w.kv("shards", shards);
            w.kv("shard_size", campaignShardSize);
            w.kv("jobs_resolved", resolveJobs(opt.jobs));
        }
        w.kv("accesses", mix.accesses);
        w.kv("warmup", mix.warmup);
        w.kv("reads", hot.reads);
        w.kv("writes", hot.writes);
        w.kv("elapsed_ns", hot.elapsedNs);
        w.kv("accesses_per_sec", hot.accessesPerSec());
        w.key("ns_per_access").beginObject();
        w.kv("mean", hot.latency.mean());
        w.kv("min", hot.latency.min());
        w.kv("max", hot.latency.max());
        w.kv("p50", hot.latency.quantile(0.50));
        w.kv("p90", hot.latency.quantile(0.90));
        w.kv("p99", hot.latency.quantile(0.99));
        w.endObject();
        w.key("outcomes").beginObject();
        w.kv("detections", hot.detections);
        w.kv("corrected", hot.corrected);
        w.kv("dues", hot.dues);
        w.kv("recovery_episodes", hot.recovery.episodes);
        w.kv("recovery_recovered", hot.recovery.recovered);
        w.kv("recovery_exhausted", hot.recovery.exhausted);
        w.endObject();
        w.kv("instrumented_accesses_per_sec", inst.accessesPerSec());
        if (mix.agingSites)
            w.kv("aging_sites", mix.agingSites);
        if (mix.mitigate) {
            // The instrumented pass ran with the monitor's actions
            // fed back; the hot pass above is the same fault schedule
            // unmitigated, so this pair is the mitigation effect.
            w.key("outcomes_mitigated").beginObject();
            w.kv("detections", inst.detections);
            w.kv("corrected", inst.corrected);
            w.kv("dues", inst.dues);
            w.kv("recovery_episodes", inst.recovery.episodes);
            w.kv("recovery_recovered", inst.recovery.recovered);
            w.kv("recovery_exhausted", inst.recovery.exhausted);
            w.kv("patrol_reads", inst.recovery.patrolReads);
            w.endObject();
        }
        w.key("breakdown");
        profile.writeJson(w);
        w.key("counters").beginObject();
        w.kv("stack_reads", stats.counterValue("stack.reads"));
        w.kv("stack_writes", stats.counterValue("stack.writes"));
        w.kv("stack_detections", stats.counterValue("stack.detections"));
        w.kv("controller_commands",
             stats.counterValue("controller.commands"));
        w.kv("recovery_episodes",
             stats.counterValue("stack.recovery.episodes"));
        w.endObject();
        if (ledger) {
            w.key("lineage");
            lineage.writeJson(w);
        }
        w.endObject();
    });
    cp.finish();
    return 0;
}
