#include "aiecc/azul.hh"

#include "crc/crc.hh"

namespace aiecc
{

void
AzulQpc::applyCrc(Burst &burst, uint32_t mtbAddr)
{
    const uint32_t crc = Crc::azulCrc4().computeWord(mtbAddr, 32);
    for (unsigned chip : replicaChips) {
        for (unsigned bit = 0; bit < 4; ++bit) {
            if ((crc >> bit) & 1) {
                const unsigned pin = chip * Burst::pinsPerChip + bit;
                burst.setBit(pin, 0, !burst.getBit(pin, 0));
            }
        }
    }
}

Burst
AzulQpc::encode(const BitVec &data, uint32_t mtbAddr) const
{
    Burst out = inner.encode(data, 0);
    applyCrc(out, mtbAddr);
    return out;
}

EccResult
AzulQpc::decode(const Burst &burst, uint32_t mtbAddr) const
{
    Burst restored = burst;
    applyCrc(restored, mtbAddr);
    EccResult res = inner.decode(restored, 0);
    if (res.status != EccStatus::Corrected)
        return res;

    // A CRC mismatch leaves an identical nonzero nibble in the first
    // beat of all three replica chips.  When the residue is small
    // enough, QPC "corrects" it like a data error; the triplication
    // makes the pattern recognizable, so the controller re-derives the
    // applied corrections and attributes them to the address instead
    // of silently consuming data fetched from the wrong location.
    Burst corrected = restored;
    corrected.setData(res.data);

    Burst diff = corrected;
    diff ^= restored;

    // Extract the per-replica nibble deltas and blank the slots.
    uint8_t nibble[3];
    for (unsigned r = 0; r < 3; ++r) {
        nibble[r] = 0;
        for (unsigned bit = 0; bit < 4; ++bit) {
            const unsigned pin =
                replicaChips[r] * Burst::pinsPerChip + bit;
            if (diff.getBit(pin, 0)) {
                nibble[r] |= static_cast<uint8_t>(1u << bit);
                diff.setBit(pin, 0, false);
            }
        }
    }

    if (nibble[0] != 0 && nibble[0] == nibble[1] &&
        nibble[1] == nibble[2]) {
        res.addressError = true;
        // No diagnosis: a 4-bit CRC cannot recover the faulty address.
    }
    return res;
}

} // namespace aiecc
