/**
 * @file
 * Tests for the system-reliability model: Equation 1 arithmetic, the
 * Figure 9a centroids, MTTF conversion, the paper's headline sanity
 * numbers, and the clustering substrate.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "reliability/cluster.hh"
#include "reliability/fit.hh"

namespace aiecc
{
namespace
{

TEST(Centroids, MatchFigure9a)
{
    const auto cs = paperCentroids();
    ASSERT_EQ(cs.size(), 4u);
    EXPECT_EQ(cs[0].apps, 33u);
    EXPECT_DOUBLE_EQ(cs[0].dataBwFrac, 0.0050);
    EXPECT_DOUBLE_EQ(cs[2].rates.pre, 116.0e6);
    EXPECT_DOUBLE_EQ(cs[3].rates.rd, 23.6e6);
    // The outlier is read-dominated.
    EXPECT_GT(cs[3].rates.rd / cs[3].rates.wr, 100.0);
}

TEST(Fit, EquationOneArithmetic)
{
    // Hand-computed single-term check: one command type at 1e6
    // cmds/sec, a per-pin undetected-SDC sum of 2.0, BER 1e-20:
    // FIT = 1e-20 * 1e6 * 2 * 3.6e12 = 0.072 per 1e9 device-hours.
    HarmProbs probs;
    probs.perPattern[0].sdcPins = 2.0;
    CommandRates rates;
    rates.actWr = 1e6;
    const auto fit = computeFit(1e-20, rates, probs);
    EXPECT_NEAR(fit.sdcFit, 0.072, 1e-12);
    EXPECT_DOUBLE_EQ(fit.mdcFit, 0.0);
}

TEST(Fit, AllPinTermAttributedToClock)
{
    HarmProbs probs;
    probs.perPattern[3].sdcAllPin = 0.5; // RD pattern, CK noise
    CommandRates rates;
    rates.rd = 2e6;
    const auto fit = computeFit(1e-20, rates, probs);
    EXPECT_NEAR(fit.sdcFit, 1e-20 * 2e6 * 0.5 * 3.6e12, 1e-12);
}

TEST(Fit, PaperHeadlineUnprotectedFit)
{
    // §V-C: 1e-16 BER corresponds to ~2.8e6 unprotected FIT with the
    // high-bandwidth centroid (2.8 FIT at 1e-22).  With all harm
    // probabilities near 1 and 27+1 signals this is an upper bound;
    // the measured numbers land within a small factor.
    HarmProbs worstCase;
    for (auto &pp : worstCase.perPattern) {
        pp.sdcPins = 27.0 * 0.8;
        pp.sdcAllPin = 0.8;
    }
    const auto high = paperCentroids()[2];
    const auto fit = computeFit(1e-22, high.rates, worstCase);
    EXPECT_GT(fit.sdcFit, 1.0);
    EXPECT_LT(fit.sdcFit, 10.0);
}

TEST(Fit, MttfMatchesPaperScale)
{
    // §V-C: 2.8 FIT_CCCA => 3.4e6 system FIT and a 12-day MTTF on
    // 1.2M devices.
    const double hours = mttfHours(2.8, 1.2e6);
    EXPECT_NEAR(hours / 24.0, 12.4, 0.5);
    EXPECT_EQ(formatDuration(hours), "12 days");
}

TEST(Fit, MttfScalesInverselyWithBer)
{
    HarmProbs probs;
    probs.perPattern[0].sdcPins = 1.0;
    CommandRates rates;
    rates.actWr = 1e6;
    const auto fitLo = computeFit(1e-22, rates, probs);
    const auto fitHi = computeFit(1e-20, rates, probs);
    EXPECT_NEAR(fitHi.sdcFit / fitLo.sdcFit, 100.0, 1e-6);
}

TEST(Fit, ResolutionFloorMatchesOneEventPerCell)
{
    // With N all-pin samples, the smallest nonzero probability is
    // 1/N; the floor is Eq.1 evaluated at exactly that.
    CommandRates rates;
    rates.rd = 1e6;
    rates.wr = 2e6;
    const double floor = fitResolutionFloor(1e-20, rates, 50);
    HarmProbs one;
    for (auto &pp : one.perPattern)
        pp.sdcAllPin = 1.0 / 50;
    EXPECT_DOUBLE_EQ(floor, computeFit(1e-20, rates, one).sdcFit);
    EXPECT_DOUBLE_EQ(fitResolutionFloor(1e-20, rates, 0), 0.0);
}

TEST(Fit, FormatDurationBands)
{
    EXPECT_EQ(formatDuration(0.5), "30 minutes");
    EXPECT_EQ(formatDuration(3.0), "3 hours");
    EXPECT_EQ(formatDuration(26.0), "26 hours");
    EXPECT_EQ(formatDuration(24.0 * 13), "13 days");
    EXPECT_EQ(formatDuration(24.0 * 30.44 * 4), "4 months");
    EXPECT_EQ(formatDuration(24.0 * 365.25 * 768), "768 years");
    EXPECT_EQ(formatDuration(INFINITY), "inf");
}

TEST(Fit, ZeroFitIsInfiniteMttf)
{
    EXPECT_TRUE(std::isinf(mttfHours(0.0, 1.2e6)));
}

TEST(Cluster, SeparatesObviousGroups)
{
    // Two tight groups in 2-D must split cleanly.
    std::vector<std::vector<double>> pts = {
        {0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1},
        {5.0, 5.0}, {5.1, 5.0}, {5.0, 5.1},
    };
    const auto c = hierarchicalCluster(pts, 2);
    ASSERT_EQ(c.numClusters(), 2u);
    for (const auto &cluster : c.members) {
        ASSERT_EQ(cluster.size(), 3u);
        const bool lowGroup = cluster[0] < 3;
        for (size_t i : cluster)
            EXPECT_EQ(i < 3, lowGroup);
    }
}

TEST(Cluster, SingletonAndFullK)
{
    std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {2.0}};
    const auto one = hierarchicalCluster(pts, 1);
    EXPECT_EQ(one.numClusters(), 1u);
    EXPECT_EQ(one.members[0].size(), 3u);
    const auto three = hierarchicalCluster(pts, 3);
    EXPECT_EQ(three.numClusters(), 3u);
}

TEST(Cluster, MedianMemberIsNearestCentroid)
{
    std::vector<std::vector<double>> pts = {
        {0.0, 0.0}, {1.0, 1.0}, {0.5, 0.5}, // centroid ~ (0.5, 0.5)
        {10.0, 10.0},
    };
    const auto c = hierarchicalCluster(pts, 2);
    for (size_t k = 0; k < c.numClusters(); ++k) {
        if (c.members[k].size() == 3) {
            EXPECT_EQ(c.medianMember(k, pts), 2u);
        }
    }
}

TEST(Cluster, NormalizationMakesScalesComparable)
{
    // Dimension 2 has a huge scale; without normalization it would
    // dominate and split {a,b} apart.  a and b agree there and differ
    // slightly in dim 1; c differs hugely in dim 1.
    std::vector<std::vector<double>> pts = {
        {0.00, 1e6}, {0.05, 1e6}, {1.00, 1e6 + 1},
    };
    const auto c = hierarchicalCluster(pts, 2);
    // The singleton must be index 2.
    for (const auto &cluster : c.members) {
        if (cluster.size() == 1) {
            EXPECT_EQ(cluster[0], 2u);
        }
    }
}

} // namespace
} // namespace aiecc
