#include "rs/rs_code.hh"

#include <algorithm>

#include "common/logging.hh"

namespace aiecc
{

RsCodec::RsCodec(unsigned n, unsigned k, unsigned fcr)
    : nLen(n), kLen(k), fcrBase(fcr)
{
    AIECC_ASSERT(k < n && n <= Gf256::groupOrder,
                 "invalid RS parameters n=" << n << " k=" << k);
    const unsigned nr = nroots();

    // Generator g(x) = prod (x - alpha^(fcr+i)), low-degree-first.
    const Gf256Poly gen = Gf256Poly::rsGenerator(nr, fcr);
    genCoef.assign(nr + 1, 0);
    for (unsigned j = 0; j <= nr; ++j)
        genCoef[j] = gen[j];
    AIECC_ASSERT(genCoef[nr] == 1, "RS generator is not monic");

    // LFSR rows: encTab[fb * nr + m] = fb * genCoef[nr - 1 - m].  One
    // division step shifts the parity register up and subtracts the
    // feedback-scaled generator; laying the row out in register order
    // makes the shift update a contiguous walk.
    encTab.assign(256u * nr, 0);
    for (unsigned fb = 1; fb < 256; ++fb) {
        for (unsigned m = 0; m < nr; ++m) {
            encTab[fb * nr + m] = Gf256::mul(static_cast<GfElem>(fb),
                                             genCoef[nr - 1 - m]);
        }
    }

    // Per-root Horner multipliers: acc -> acc * alpha^(fcr+j).
    syndTab.assign(nr * 256u, 0);
    for (unsigned j = 0; j < nr; ++j) {
        const GfElem x = Gf256::alphaPow(static_cast<int>(fcr + j));
        for (unsigned a = 0; a < 256; ++a) {
            syndTab[j * 256 + a] =
                Gf256::mul(static_cast<GfElem>(a), x);
        }
    }

    // Chien probes and erasure locators per codeword position.
    xinvTab.assign(nLen, 0);
    xlTab.assign(nLen, 0);
    for (unsigned pos = 0; pos < nLen; ++pos) {
        xinvTab[pos] =
            Gf256::alphaPow(-static_cast<int>(nLen - 1 - pos));
        xlTab[pos] = Gf256::alphaPow(static_cast<int>(nLen - 1 - pos));
    }
}

void
RsCodec::parityInto(const GfElem *message, GfElem *parity) const
{
    const unsigned nr = nroots();
    GfElem par[256];
    std::fill(par, par + nr, 0);
    for (unsigned i = 0; i < kLen; ++i) {
        const GfElem fb = static_cast<GfElem>(message[i] ^ par[0]);
        const GfElem *row = &encTab[static_cast<size_t>(fb) * nr];
        for (unsigned m = 0; m + 1 < nr; ++m)
            par[m] = static_cast<GfElem>(par[m + 1] ^ row[m]);
        par[nr - 1] = row[nr - 1];
    }
    std::copy(par, par + nr, parity);
}

void
RsCodec::encodeInto(const GfElem *message, GfElem *codeword) const
{
    std::copy(message, message + kLen, codeword);
    parityInto(message, codeword + kLen);
}

bool
RsCodec::syndromesInto(const GfElem *received, GfElem *synd) const
{
    const unsigned nr = nroots();
    GfElem any = 0;
    for (unsigned j = 0; j < nr; ++j) {
        const GfElem *tab = &syndTab[static_cast<size_t>(j) * 256];
        GfElem acc = 0;
        for (unsigned i = 0; i < nLen; ++i)
            acc = static_cast<GfElem>(tab[acc] ^ received[i]);
        synd[j] = acc;
        any = static_cast<GfElem>(any | acc);
    }
    return any == 0;
}

bool
RsCodec::isCodewordRaw(const GfElem *word) const
{
    GfElem synd[256];
    return syndromesInto(word, synd);
}

RsCodec::Status
RsCodec::decodeInto(GfElem *received, RsWorkspace &ws,
                    uint8_t *positions, unsigned &numPositions,
                    const unsigned *erasures,
                    unsigned numErasures) const
{
    numPositions = 0;

    const unsigned nr = nroots();
    if (syndromesInto(received, ws.synd.data()))
        return Status::Ok;

    if (numErasures > nr)
        return Status::Uncorrectable;

    const GfElem *exp = Gf256::expTable();
    const uint16_t *lg = Gf256::logTable();
    const auto gmul = [exp, lg](GfElem a, GfElem b) -> GfElem {
        return (a && b)
                   ? exp[static_cast<unsigned>(lg[a]) + lg[b]]
                   : 0;
    };

    GfElem *synd = ws.synd.data();
    GfElem *lambda = ws.lambda.data();

    // Erasure locator Gamma(x) = prod (1 + X_l x), X_l = alpha^(n-1-pos).
    std::fill(lambda, lambda + nr + 1, 0);
    lambda[0] = 1;
    for (unsigned e = 0; e < numErasures; ++e) {
        const unsigned pos = erasures[e];
        AIECC_ASSERT(pos < nLen, "RS decode: erasure out of range");
        const GfElem xl = xlTab[pos];
        for (unsigned i = nr; i >= 1; --i)
            lambda[i] =
                static_cast<GfElem>(lambda[i] ^ gmul(lambda[i - 1], xl));
    }

    // Errors-and-erasures Berlekamp-Massey (libfec-style formulation).
    GfElem *b = ws.bpoly.data();
    GfElem *t = ws.tpoly.data();
    std::copy(lambda, lambda + nr + 1, b);
    unsigned el = numErasures;
    for (unsigned r = numErasures + 1; r <= nr; ++r) {
        // Invariant: i < r <= nr inside the discrepancy sum, so both
        // lambda[i] and synd[r - i - 1] stay in bounds — the window
        // never needs narrowing.
        AIECC_ASSERT(r <= nr, "BM round " << r << " exceeds nroots");
        GfElem discr = 0;
        for (unsigned i = 0; i < r; ++i)
            discr = static_cast<GfElem>(
                discr ^ gmul(lambda[i], synd[r - i - 1]));
        if (discr == 0) {
            // b = x * b
            for (unsigned i = nr; i >= 1; --i)
                b[i] = b[i - 1];
            b[0] = 0;
        } else {
            t[0] = lambda[0];
            for (unsigned i = 0; i < nr; ++i)
                t[i + 1] =
                    static_cast<GfElem>(lambda[i + 1] ^ gmul(discr, b[i]));
            if (2 * el <= r + numErasures - 1) {
                el = r + numErasures - el;
                const GfElem dinv = Gf256::inv(discr);
                for (unsigned i = 0; i <= nr; ++i)
                    b[i] = gmul(lambda[i], dinv);
            } else {
                for (unsigned i = nr; i >= 1; --i)
                    b[i] = b[i - 1];
                b[0] = 0;
            }
            std::copy(t, t + nr + 1, lambda);
        }
    }

    // Degree of Lambda.
    int degLambda = -1;
    for (int i = static_cast<int>(nr); i >= 0; --i) {
        if (lambda[static_cast<unsigned>(i)] != 0) {
            degLambda = i;
            break;
        }
    }
    if (degLambda <= 0) {
        // Nonzero syndromes but no locatable error.
        return Status::Uncorrectable;
    }
    const unsigned deg = static_cast<unsigned>(degLambda);

    // Chien search over the n valid positions of the shortened code,
    // evaluating Lambda on the raw workspace buffer (no per-position
    // polynomial copies).
    unsigned found = 0;
    for (unsigned pos = 0; pos < nLen; ++pos) {
        const GfElem xinv = xinvTab[pos];
        GfElem acc = lambda[deg];
        for (int j = static_cast<int>(deg) - 1; j >= 0; --j)
            acc = static_cast<GfElem>(
                gmul(acc, xinv) ^ lambda[static_cast<unsigned>(j)]);
        if (acc == 0) {
            ws.chien[found] = static_cast<uint8_t>(pos);
            ws.roots[found] = xinv;
            ++found;
        }
    }
    if (found != deg) {
        // Lambda has roots outside the shortened support or repeated
        // roots: a decoding failure.
        return Status::Uncorrectable;
    }

    // Omega(x) = S(x) * Lambda(x) mod x^nroots.
    GfElem *omega = ws.omega.data();
    for (unsigned i = 0; i < nr; ++i) {
        GfElem acc = 0;
        const unsigned jmax = std::min(i, deg);
        for (unsigned j = 0; j <= jmax; ++j)
            acc = static_cast<GfElem>(acc ^ gmul(lambda[j], synd[i - j]));
        omega[i] = acc;
    }

    // Forney: e = X^(1-fcr) * Omega(X^-1) / Lambda'(X^-1), applying
    // corrections in place and saving overwritten symbols so a failed
    // screen can restore the received word exactly.
    unsigned applied = 0;
    const auto rollback = [&]() {
        for (unsigned u = 0; u < applied; ++u)
            received[ws.chien[u]] = ws.saved[u];
        numPositions = 0;
    };
    for (unsigned idx = 0; idx < found; ++idx) {
        const GfElem xinv = ws.roots[idx];
        // Lambda'(X^-1): odd-degree terms only in characteristic 2.
        const GfElem x2 = gmul(xinv, xinv);
        GfElem den = 0;
        GfElem xp = 1;
        for (unsigned j = 1; j <= deg; j += 2) {
            den = static_cast<GfElem>(den ^ gmul(lambda[j], xp));
            xp = gmul(xp, x2);
        }
        if (den == 0) {
            rollback();
            return Status::Uncorrectable;
        }
        GfElem num = omega[nr - 1];
        for (int j = static_cast<int>(nr) - 2; j >= 0; --j)
            num = static_cast<GfElem>(
                gmul(num, xinv) ^ omega[static_cast<unsigned>(j)]);
        if (fcrBase != 1) {
            // Multiply by X^(1 - fcr) = (X^-1)^(fcr - 1).
            num = gmul(num, Gf256::pow(xinv, fcrBase - 1));
        }
        const GfElem magnitude = Gf256::div(num, den);
        const unsigned pos = ws.chien[idx];
        ws.saved[applied] = received[pos];
        ++applied;
        received[pos] = static_cast<GfElem>(received[pos] ^ magnitude);
        if (magnitude != 0)
            positions[numPositions++] = static_cast<uint8_t>(pos);
    }

    // Sanity: the corrected word must be a codeword.  When the error
    // pattern exceeds the design distance the BM/Chien pipeline can
    // produce an inconsistent "correction"; screen it out.
    {
        GfElem check[256];
        if (!syndromesInto(received, check)) {
            rollback();
            return Status::Uncorrectable;
        }
    }

    return Status::Corrected;
}

void
RsCodec::parityBatch(const GfElem *messages, GfElem *parities,
                     unsigned lanes) const
{
    AIECC_ASSERT(lanes >= 1 && lanes <= maxLanes,
                 "RS parityBatch: bad lane count " << lanes);
    const unsigned nr = nroots();
    std::array<GfElem, 256 * maxLanes> par;
    std::fill(par.begin(), par.begin() + nr * lanes, 0);
    const GfElem *rows[maxLanes] = {};
    for (unsigned i = 0; i < kLen; ++i) {
        const GfElem *msg = messages + static_cast<size_t>(i) * lanes;
        for (unsigned c = 0; c < lanes; ++c) {
            const GfElem fb = static_cast<GfElem>(msg[c] ^ par[c]);
            rows[c] = &encTab[static_cast<size_t>(fb) * nr];
        }
        for (unsigned m = 0; m + 1 < nr; ++m) {
            for (unsigned c = 0; c < lanes; ++c)
                par[m * lanes + c] = static_cast<GfElem>(
                    par[(m + 1) * lanes + c] ^ rows[c][m]);
        }
        for (unsigned c = 0; c < lanes; ++c)
            par[(nr - 1) * lanes + c] = rows[c][nr - 1];
    }
    std::copy(par.begin(), par.begin() + nr * lanes, parities);
}

void
RsCodec::decodeBatch(GfElem *received, unsigned lanes,
                     LaneResult *results, RsWorkspace &ws) const
{
    AIECC_ASSERT(lanes >= 1 && lanes <= maxLanes,
                 "RS decodeBatch: bad lane count " << lanes);
    AIECC_ASSERT(nroots() <= 8,
                 "RS decodeBatch: LaneResult holds at most 8 positions");
    const unsigned nr = nroots();

    // One interleaved sweep computes every lane's syndromes; lanes
    // whose syndromes are all zero are finished.
    GfElem dirty[maxLanes] = {};
    for (unsigned j = 0; j < nr; ++j) {
        const GfElem *tab = &syndTab[static_cast<size_t>(j) * 256];
        GfElem acc[maxLanes] = {};
        const GfElem *sym = received;
        for (unsigned i = 0; i < nLen; ++i, sym += lanes) {
            for (unsigned c = 0; c < lanes; ++c)
                acc[c] = static_cast<GfElem>(tab[acc[c]] ^ sym[c]);
        }
        for (unsigned c = 0; c < lanes; ++c)
            dirty[c] = static_cast<GfElem>(dirty[c] | acc[c]);
    }

    for (unsigned c = 0; c < lanes; ++c) {
        LaneResult &out = results[c];
        out.status = Status::Ok;
        out.numPositions = 0;
        if (!dirty[c])
            continue;
        // De-interleave the dirty lane, run the scalar decoder, and
        // scatter any corrections back.
        GfElem *lane = ws.lane.data();
        for (unsigned i = 0; i < nLen; ++i)
            lane[i] = received[static_cast<size_t>(i) * lanes + c];
        unsigned npos = 0;
        out.status =
            decodeInto(lane, ws, out.positions.data(), npos);
        out.numPositions = static_cast<uint8_t>(npos);
        if (out.status == Status::Corrected) {
            for (unsigned i = 0; i < nLen; ++i)
                received[static_cast<size_t>(i) * lanes + c] = lane[i];
        }
    }
}

// ---- std::vector wrappers ----

std::vector<GfElem>
RsCodec::encode(const std::vector<GfElem> &message) const
{
    AIECC_ASSERT(message.size() == kLen,
                 "RS encode: message size " << message.size()
                                            << " != k " << kLen);
    std::vector<GfElem> cw(nLen);
    encodeInto(message.data(), cw.data());
    return cw;
}

std::vector<GfElem>
RsCodec::parity(const std::vector<GfElem> &message) const
{
    AIECC_ASSERT(message.size() == kLen,
                 "RS encode: message size " << message.size()
                                            << " != k " << kLen);
    std::vector<GfElem> par(nroots());
    parityInto(message.data(), par.data());
    return par;
}

bool
RsCodec::isCodeword(const std::vector<GfElem> &word) const
{
    AIECC_ASSERT(word.size() == nLen, "RS isCodeword: wrong length");
    return isCodewordRaw(word.data());
}

RsCodec::Result
RsCodec::decode(const std::vector<GfElem> &received,
                const std::vector<unsigned> &erasures) const
{
    AIECC_ASSERT(received.size() == nLen, "RS decode: wrong length");
    Result res;
    res.codeword = received;

    RsWorkspace ws;
    uint8_t positions[256];
    unsigned numPositions = 0;
    res.status = decodeInto(res.codeword.data(), ws, positions,
                            numPositions, erasures.data(),
                            static_cast<unsigned>(erasures.size()));
    res.positions.assign(positions, positions + numPositions);
    return res;
}

} // namespace aiecc
