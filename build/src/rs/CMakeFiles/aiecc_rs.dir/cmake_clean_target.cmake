file(REMOVE_RECURSE
  "libaiecc_rs.a"
)
