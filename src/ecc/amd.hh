/**
 * @file
 * AMD-style chipkill ECC (BKDG family 15h), the multi-codeword
 * baseline of the AIECC paper.
 *
 * Each 72-bit-wide, 2-beat slice of the burst forms an RS(18, 16)
 * codeword over GF(2^8): one 8-bit symbol per x4 chip (4 pins x 2
 * beats).  Four such codewords cover the 8-beat MTB.  Two parity
 * symbols give single-symbol (single-chip-per-codeword) correction,
 * so a failed chip corrupts exactly one symbol in each codeword and
 * is fully corrected.
 */

#ifndef AIECC_ECC_AMD_HH
#define AIECC_ECC_AMD_HH

#include "ecc/data_ecc.hh"
#include "rs/rs_code.hh"

namespace aiecc
{

/** Data-only AMD chipkill (4 x RS(18,16) over chip symbols). */
class AmdChipkillEcc : public DataEcc
{
  public:
    AmdChipkillEcc();

    std::string name() const override { return "AMD-chipkill"; }
    Burst encode(const BitVec &data, uint32_t mtbAddr) const override;
    EccResult decode(const Burst &burst, uint32_t mtbAddr) const override;
    bool protectsAddress() const override { return false; }
    bool preciseDiagnosis() const override { return false; }

    /** Number of codewords per burst. */
    static constexpr unsigned numWords = 4;
    /** Data chips (symbols) per codeword. */
    static constexpr unsigned dataChips = 16;
    /** Check chips per codeword. */
    static constexpr unsigned checkChips = 2;

  private:
    RsCodec rs;
    /** Decode scratch; stacks own their codecs, so this is unshared. */
    mutable RsWorkspace ws;
};

} // namespace aiecc

#endif // AIECC_ECC_AMD_HH
