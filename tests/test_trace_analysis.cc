/**
 * @file
 * Tests for offline trace analysis: the eventKindFromName inverse,
 * the flat JSONL line parser (including escape handling and malformed
 * input), whole-file reading against the checked-in miniature fixture,
 * per-kind summaries, filtering, and the structural validity of the
 * Chrome trace-event export (the golden-output contract behind
 * `aiecc-trace export --chrome`).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/json.hh"
#include "obs/trace.hh"
#include "obs/trace_reader.hh"

#ifndef AIECC_TEST_DATA_DIR
#error "AIECC_TEST_DATA_DIR must point at tests/data"
#endif

namespace aiecc
{
namespace
{

const std::string fixture =
    std::string(AIECC_TEST_DATA_DIR) + "/mini_trace.jsonl";

// ---- eventKindFromName ----

TEST(EventKindName, RoundTripsEveryKind)
{
    for (unsigned k = 0; k < obs::numEventKinds; ++k) {
        const auto kind = static_cast<obs::EventKind>(k);
        const std::string name = obs::eventKindName(kind);
        const auto back = obs::eventKindFromName(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, kind) << name;
    }
}

TEST(EventKindName, UnknownNamesAreRejected)
{
    EXPECT_FALSE(obs::eventKindFromName("").has_value());
    EXPECT_FALSE(obs::eventKindFromName("Command").has_value());
    EXPECT_FALSE(obs::eventKindFromName("commandX").has_value());
}

// ---- parseTraceLine ----

TEST(ParseTraceLine, FullObjectInAnyMemberOrder)
{
    const auto event = obs::parseTraceLine(
        R"({"value":3,"detail":"ctx","cycle":42,"kind":"retry",)"
        R"("label":"read-decode"})");
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->kind, obs::EventKind::Retry);
    EXPECT_EQ(event->cycle, 42u);
    EXPECT_EQ(event->label, "read-decode");
    EXPECT_EQ(event->value, 3u);
    EXPECT_EQ(event->detail, "ctx");
}

TEST(ParseTraceLine, OmittedMembersDefault)
{
    const auto event = obs::parseTraceLine(R"({"kind":"scrub"})");
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->kind, obs::EventKind::Scrub);
    EXPECT_EQ(event->cycle, 0u);
    EXPECT_EQ(event->label, "");
    EXPECT_EQ(event->value, 0u);
}

TEST(ParseTraceLine, EscapesRoundTripThroughTheWriter)
{
    // The writer emits \" \\ \n and \u00XX; the parser must undo all
    // of them so sink -> file -> reader is the identity.
    obs::TraceEvent original;
    original.kind = obs::EventKind::Detection;
    original.cycle = 7;
    original.label = "quote\" back\\slash";
    original.value = 9;
    original.detail = std::string("tab\tnewline\nnul:") + '\x01';
    obs::JsonWriter w(0);
    original.writeJson(w);
    const auto parsed = obs::parseTraceLine(w.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->kind, original.kind);
    EXPECT_EQ(parsed->cycle, original.cycle);
    EXPECT_EQ(parsed->label, original.label);
    EXPECT_EQ(parsed->value, original.value);
    EXPECT_EQ(parsed->detail, original.detail);
}

TEST(ParseTraceLine, MalformedInputIsRejectedWithDiagnostics)
{
    std::string error;
    EXPECT_FALSE(obs::parseTraceLine("", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(obs::parseTraceLine("not json").has_value());
    EXPECT_FALSE(obs::parseTraceLine(R"({"cycle":1})").has_value())
        << "kind is mandatory";
    EXPECT_FALSE(
        obs::parseTraceLine(R"({"kind":"martian"})").has_value());
    EXPECT_FALSE(
        obs::parseTraceLine(R"({"kind":"scrub","cycle":"ten"})")
            .has_value());
    EXPECT_FALSE(
        obs::parseTraceLine(R"({"kind":"scrub","cycle":1.5})")
            .has_value());
    EXPECT_FALSE(
        obs::parseTraceLine(R"({"kind":"scrub","label":{"x":1}})")
            .has_value())
        << "nested values are outside the schema";
    EXPECT_FALSE(
        obs::parseTraceLine(R"({"kind":"scrub"} trailing)").has_value());
}

TEST(ParseTraceLine, UnknownMembersAreIgnored)
{
    const auto event = obs::parseTraceLine(
        R"({"kind":"scrub","cycle":5,"future_field":1.25,)"
        R"("note":"hi","flag":true})");
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->cycle, 5u);
}

// ---- readTraceFile + the fixture ----

TEST(ReadTraceFile, MissingFileReportsNotOpened)
{
    const obs::TraceFile tf =
        obs::readTraceFile("/nonexistent/trace.jsonl");
    EXPECT_FALSE(tf.opened);
    EXPECT_TRUE(tf.events.empty());
}

TEST(ReadTraceFile, FixtureParsesCompletely)
{
    const obs::TraceFile tf = obs::readTraceFile(fixture);
    ASSERT_TRUE(tf.opened) << fixture;
    EXPECT_EQ(tf.badLines, 0u) << tf.firstError;
    EXPECT_EQ(tf.truncatedTail, 0u);
    ASSERT_EQ(tf.events.size(), 12u);
    EXPECT_EQ(tf.events.front().kind, obs::EventKind::CommandIssued);
    EXPECT_EQ(tf.events.front().cycle, 10u);
    EXPECT_EQ(tf.events.back().kind, obs::EventKind::Classification);
    EXPECT_EQ(tf.events.back().label, "CE");
}

// A writer killed mid-record leaves a final line with no terminating
// newline.  That partial record is expected damage, not corruption:
// it must land in truncatedTail, leave badLines/firstError untouched,
// and not disturb the complete records before it.
TEST(ReadTraceFile, TruncatedFinalLineCountedSeparately)
{
    const std::string truncated =
        std::string(AIECC_TEST_DATA_DIR) + "/truncated_tail.jsonl";
    const obs::TraceFile tf = obs::readTraceFile(truncated);
    ASSERT_TRUE(tf.opened) << truncated;
    EXPECT_EQ(tf.truncatedTail, 1u);
    EXPECT_EQ(tf.badLines, 0u) << tf.firstError;
    EXPECT_TRUE(tf.firstError.empty()) << tf.firstError;
    ASSERT_EQ(tf.events.size(), 2u);
    EXPECT_EQ(tf.events[0].kind, obs::EventKind::CommandIssued);
    EXPECT_EQ(tf.events[1].kind, obs::EventKind::Detection);
    EXPECT_EQ(tf.events[1].value, 3);
}

// A malformed line in the *middle* of the file (newline-terminated)
// is real corruption and still goes through the badLines/firstError
// path -- only the unterminated tail gets the lenient treatment.
TEST(ReadTraceFile, MidFileGarbageStillCountsAsBadLine)
{
    const std::string path = testing::TempDir() + "/aiecc_midbad.jsonl";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"kind\":\"command\",\"cycle\":1,\"label\":\"ACT\"}\n"
            << "{\"kind\":\"detec\n" // malformed but terminated
            << "{\"kind\":\"command\",\"cycle\":2,\"label\":\"RD\"}\n";
    }
    const obs::TraceFile tf = obs::readTraceFile(path);
    ASSERT_TRUE(tf.opened);
    EXPECT_EQ(tf.badLines, 1u);
    EXPECT_FALSE(tf.firstError.empty());
    EXPECT_EQ(tf.truncatedTail, 0u);
    EXPECT_EQ(tf.events.size(), 2u);
    std::remove(path.c_str());
}

// ---- summarizeTrace ----

TEST(SummarizeTrace, FixtureAggregates)
{
    const obs::TraceFile tf = obs::readTraceFile(fixture);
    ASSERT_TRUE(tf.opened);
    const obs::TraceSummary sum = obs::summarizeTrace(tf.events);

    EXPECT_EQ(sum.totalEvents, 12u);
    EXPECT_EQ(sum.firstCycle, 10u);
    EXPECT_EQ(sum.lastCycle, 90u);

    const auto &commands =
        sum.byKind.at(obs::EventKind::CommandIssued);
    EXPECT_EQ(commands.count, 5u);
    EXPECT_EQ(commands.firstCycle, 10u);
    EXPECT_EQ(commands.lastCycle, 70u);
    EXPECT_EQ(commands.gaps.count(), 4u); // 5 events -> 4 gaps
    EXPECT_EQ(commands.byLabel.at("RD"), 3u);
    EXPECT_EQ(commands.byLabel.at("ACT"), 1u);

    const auto &retries = sum.byKind.at(obs::EventKind::Retry);
    EXPECT_EQ(retries.count, 2u);
    EXPECT_EQ(retries.gaps.count(), 1u);
    EXPECT_EQ(retries.gaps.max(), 18u); // cycles 42 -> 60

    // 5 commands over span [10,90] = 81 cycles.
    EXPECT_NEAR(
        sum.ratePerKiloCycle(obs::EventKind::CommandIssued),
        5000.0 / 81.0, 1e-9);
    EXPECT_EQ(sum.ratePerKiloCycle(obs::EventKind::PatrolScrub), 0.0);
}

TEST(SummarizeTrace, EmptyTrace)
{
    const obs::TraceSummary sum = obs::summarizeTrace({});
    EXPECT_EQ(sum.totalEvents, 0u);
    EXPECT_TRUE(sum.byKind.empty());
}

// ---- filterEvents ----

TEST(FilterEvents, ByKindLabelAndCycleWindow)
{
    const obs::TraceFile tf = obs::readTraceFile(fixture);
    ASSERT_TRUE(tf.opened);

    obs::TraceFilter byKind;
    byKind.kind = obs::EventKind::CommandIssued;
    EXPECT_EQ(obs::filterEvents(tf.events, byKind).size(), 5u);

    obs::TraceFilter byLabel;
    byLabel.label = "read-decode";
    EXPECT_EQ(obs::filterEvents(tf.events, byLabel).size(), 3u);

    obs::TraceFilter byWindow;
    byWindow.cycleMin = 40;
    byWindow.cycleMax = 55;
    EXPECT_EQ(obs::filterEvents(tf.events, byWindow).size(), 5u);

    obs::TraceFilter combined;
    combined.kind = obs::EventKind::CommandIssued;
    combined.label = "RD";
    combined.cycleMax = 60;
    const auto got = obs::filterEvents(tf.events, combined);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].cycle, 40u);
    EXPECT_EQ(got[1].cycle, 55u);
}

// ---- Chrome export ----

TEST(ChromeExport, FixtureProducesValidDocumentWithEpisodeSpan)
{
    const obs::TraceFile tf = obs::readTraceFile(fixture);
    ASSERT_TRUE(tf.opened);

    obs::JsonWriter w;
    const uint64_t spans = obs::writeChromeTrace(tf.events, w);
    // complete() is the writer's structural-validity guarantee: every
    // begin was matched, so the document is syntactically valid JSON.
    ASSERT_TRUE(w.complete());
    EXPECT_EQ(spans, 1u);

    const std::string doc = w.str();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
    // The retry at cycle 42 and recovery at 75 pair into one span.
    EXPECT_NE(doc.find("\"episode:read-decode\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ts\": 42"), std::string::npos);
    EXPECT_NE(doc.find("\"dur\": 33"), std::string::npos);
    EXPECT_NE(doc.find("\"in-band recovery succeeded\""),
              std::string::npos);
    // Instant events carry the kind:label names.
    EXPECT_NE(doc.find("\"command:ACT\""), std::string::npos);
    EXPECT_NE(doc.find("\"detection:eDECC\""), std::string::npos);
}

TEST(ChromeExport, UnmatchedRetryEmitsNoSpan)
{
    std::vector<obs::TraceEvent> events(2);
    events[0].kind = obs::EventKind::Retry;
    events[0].cycle = 5;
    events[0].label = "wr";
    events[0].value = 1;
    events[1].kind = obs::EventKind::CommandIssued;
    events[1].cycle = 9;
    events[1].label = "WR";

    obs::JsonWriter w;
    EXPECT_EQ(obs::writeChromeTrace(events, w), 0u);
    ASSERT_TRUE(w.complete());
    EXPECT_EQ(w.str().find("\"ph\": \"X\""), std::string::npos);
}

TEST(ChromeExport, EmptyTraceStillYieldsACompleteDocument)
{
    obs::JsonWriter w;
    EXPECT_EQ(obs::writeChromeTrace({}, w), 0u);
    ASSERT_TRUE(w.complete());
    EXPECT_NE(w.str().find("\"traceEvents\""), std::string::npos);
}

} // namespace
} // namespace aiecc
