/**
 * @file
 * Table II reproduction: the impact of undetected 1-pin CCCA errors
 * across pin locations and the five command patterns, on an
 * unprotected DDR4 channel.  Each cell reports the end-to-end outcome
 * (NE / SDC / MDC / SDC+MDC) and how the corrupted edge decoded
 * (missing, extra, or altered command), matching the paper's
 * CMD- / CMD+ / CMD_A->CMD_B notation.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/table.hh"
#include "inject/campaign.hh"

using namespace aiecc;

namespace
{

/** Paper-style annotation of what the error turned the command into. */
std::string
transition(const TrialResult &r)
{
    const std::string from = cmdName(r.intended.type);
    if (!r.decoded.executed)
        return from + "-";
    if (r.decoded.cmd.type != r.intended.type)
        return from + "->" + cmdName(r.decoded.cmd.type);
    if (!(r.decoded.cmd == r.intended))
        return "addr";
    return "=";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parse(argc, argv);
    bench::banner("Table II: impact of undetected 1-pin CCCA errors "
                  "(no protection)");

    InjectionCampaign camp(Mechanisms::forLevel(ProtectionLevel::None));

    // Collect results per pin per pattern.
    std::map<Pin, std::map<CommandPattern, TrialResult>> grid;
    for (CommandPattern pattern : allPatterns()) {
        for (auto &[pin, result] : camp.perPinResults(pattern))
            grid[pin][pattern] = result;
    }

    TextTable t;
    t.header({"pin", "ACT(+WR)", "ACT(+RD)", "WR", "RD", "PRE"});
    for (unsigned i = numCccaPins; i-- > 0;) {
        const Pin pin = static_cast<Pin>(i);
        if (grid.find(pin) == grid.end())
            continue; // CK / PAR not injectable here
        std::vector<std::string> row{pinName(pin)};
        for (CommandPattern pattern : allPatterns()) {
            const auto &r = grid[pin][pattern];
            std::string cell = outcomeName(r.outcome);
            const std::string trans = transition(r);
            if (trans != "=" && trans != "addr")
                cell += " (" + trans + ")";
            row.push_back(cell);
        }
        t.row(row);
    }
    std::printf("%s\n", t.str().c_str());

    bench::writeJsonArtifact(
        opt, "table2_impact", [&](obs::JsonWriter &w) {
            w.beginObject();
            for (const auto &[pin, perPattern] : grid) {
                w.key(pinName(pin));
                w.beginObject();
                for (const auto &[pattern, r] : perPattern) {
                    w.key(patternName(pattern));
                    w.beginObject();
                    w.kv("outcome", outcomeName(r.outcome));
                    w.kv("transition", transition(r));
                    w.kv("detected", r.detected);
                    w.endObject();
                }
                w.endObject();
            }
            w.endObject();
        });

    std::printf(
        "Legend: NE = no error manifests; SDC = silent data corruption;"
        "\nMDC = memory data corruption; CMD- = the command is lost;\n"
        "CMD->X = the command is altered into X.\n\n"
        "Paper cross-checks (Section V-A1):\n"
        "  * any undetected ACT error => SDC+MDC (with WR) or SDC "
        "(with RD);\n"
        "  * WR: A11/A13/A17 manifest no error, everything else "
        "SDC+MDC;\n"
        "  * RD: A11/A13/A17 no error; column/bank/CKE/CS/CAS/BC "
        "errors => SDC;\n"
        "  * PRE: 14 pins (A17, A13..A11, A9..A0) manifest no "
        "error.\n");
    return 0;
}
