/**
 * @file
 * A shortened Reed-Solomon codec over GF(2^8) with errors-and-erasures
 * decoding.
 *
 * This is the coding engine behind every chipkill ECC organization in
 * the repository: AMD chipkill uses RS(18,16), QPC Bamboo ECC uses
 * RS(72,64), and the eDECC variants extend those to RS(19,17) and
 * RS(76,68) by appending virtual address symbols (Section IV-A of the
 * AIECC paper).
 */

#ifndef AIECC_RS_RS_CODE_HH
#define AIECC_RS_RS_CODE_HH

#include <cstddef>
#include <vector>

#include "gf/gf256.hh"
#include "gf/poly.hh"

namespace aiecc
{

/**
 * Systematic shortened RS(n, k) codec over GF(2^8).
 *
 * Codewords are stored message-first: positions [0, k) carry the
 * message, positions [k, n) the parity.  Position 0 corresponds to the
 * highest-degree codeword-polynomial coefficient (the standard
 * transmission order), so shortening simply prepends implicit zero
 * symbols that are never transmitted.
 *
 * The decoder runs syndrome computation, errors-and-erasures
 * Berlekamp-Massey, Chien search, and Forney's algorithm.  It corrects
 * any pattern with 2 * numErrors + numErasures <= n - k and flags
 * heavier patterns as detected-uncorrectable unless they alias into a
 * different codeword (a miscorrection), which callers can measure by
 * comparing against the original codeword.
 */
class RsCodec
{
  public:
    /** Outcome of a decode attempt. */
    enum class Status
    {
        Ok,              ///< Syndromes were all zero: codeword accepted.
        Corrected,       ///< Errors were located and corrected.
        Uncorrectable,   ///< Detected, but beyond the correction power.
    };

    /** Everything the decoder learned about a received word. */
    struct Result
    {
        Status status = Status::Ok;
        /** Corrected codeword (valid for Ok/Corrected). */
        std::vector<GfElem> codeword;
        /** Codeword positions the decoder corrected. */
        std::vector<unsigned> positions;

        bool ok() const { return status != Status::Uncorrectable; }
    };

    /**
     * Build an RS(n, k) codec.
     *
     * @param n Codeword length in symbols, k < n <= 255.
     * @param k Message length in symbols.
     * @param fcr First consecutive root of the generator (default 1).
     */
    RsCodec(unsigned n, unsigned k, unsigned fcr = 1);

    unsigned n() const { return nLen; }
    unsigned k() const { return kLen; }
    /** Number of parity symbols (n - k). */
    unsigned nroots() const { return nLen - kLen; }
    /** Guaranteed symbol-error correction capability floor((n-k)/2). */
    unsigned t() const { return nroots() / 2; }

    /**
     * Systematically encode @p message.
     *
     * @param message Exactly k symbols.
     * @return The n-symbol codeword, message-first.
     */
    std::vector<GfElem> encode(const std::vector<GfElem> &message) const;

    /** Compute only the n-k parity symbols of @p message. */
    std::vector<GfElem>
    parity(const std::vector<GfElem> &message) const;

    /** True iff @p word (n symbols) has all-zero syndromes. */
    bool isCodeword(const std::vector<GfElem> &word) const;

    /**
     * Decode a received word.
     *
     * @param received Exactly n symbols.
     * @param erasures Known-suspect codeword positions (each < n).
     * @return Decode status, corrected word and error positions.
     */
    Result decode(const std::vector<GfElem> &received,
                  const std::vector<unsigned> &erasures = {}) const;

  private:
    unsigned nLen;
    unsigned kLen;
    unsigned fcr;
    Gf256Poly generator;

    /** Syndromes S_j = r(alpha^(fcr+j)), j in [0, nroots). */
    std::vector<GfElem>
    syndromes(const std::vector<GfElem> &received) const;
};

} // namespace aiecc

#endif // AIECC_RS_RS_CODE_HH
