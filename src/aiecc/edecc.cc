#include "aiecc/edecc.hh"

#include "common/logging.hh"

namespace aiecc
{

namespace
{

GfElem
addrByte(uint32_t mtbAddr, unsigned j)
{
    return static_cast<GfElem>((mtbAddr >> (8 * j)) & 0xFF);
}

} // namespace

// ---------------------------------------------------------------------
// EDeccQpc: RS(76, 68); positions 0..63 data, 64..67 address (virtual),
// 68..75 parity.
// ---------------------------------------------------------------------

EDeccQpc::EDeccQpc()
    : rs(Burst::numPins + addrSymbols, Burst::dataPins + addrSymbols)
{
}

Burst
EDeccQpc::encode(const BitVec &data, uint32_t mtbAddr) const
{
    AIECC_ASSERT(data.size() == Burst::dataBits, "eDECC encode: bad size");
    Burst out;
    out.setData(data);

    GfElem message[Burst::dataPins + addrSymbols];
    for (unsigned p = 0; p < Burst::dataPins; ++p)
        message[p] = out.pinSymbol(p);
    for (unsigned j = 0; j < addrSymbols; ++j)
        message[Burst::dataPins + j] = addrByte(mtbAddr, j);

    GfElem parity[Burst::checkPins];
    rs.parityInto(message, parity);
    // The address symbols are virtual: only data + parity are stored.
    for (unsigned j = 0; j < Burst::checkPins; ++j)
        out.setPinSymbol(Burst::dataPins + j, parity[j]);
    return out;
}

EccResult
EDeccQpc::decode(const Burst &burst, uint32_t mtbAddr) const
{
    // Reassemble the full codeword: received data symbols, the read
    // address as the virtual symbols, received parity.
    GfElem received[Burst::numPins + addrSymbols];
    for (unsigned p = 0; p < Burst::dataPins; ++p)
        received[p] = burst.pinSymbol(p);
    for (unsigned j = 0; j < addrSymbols; ++j)
        received[Burst::dataPins + j] = addrByte(mtbAddr, j);
    for (unsigned j = 0; j < Burst::checkPins; ++j)
        received[Burst::dataPins + addrSymbols + j] =
            burst.pinSymbol(Burst::dataPins + j);

    uint8_t positions[Burst::checkPins];
    unsigned numPositions = 0;
    const auto status =
        rs.decodeInto(received, ws, positions, numPositions);

    EccResult res;
    res.data = burst.data();
    switch (status) {
      case RsCodec::Status::Ok:
        res.status = EccStatus::Clean;
        return res;

      case RsCodec::Status::Corrected: {
        res.status = EccStatus::Corrected;
        res.symbolsCorrected = numPositions;
        for (unsigned p = 0; p < Burst::dataPins; ++p)
            res.data.setField(p * 8, 8, received[p]);
        for (unsigned i = 0; i < numPositions; ++i) {
            if (positions[i] >= Burst::dataPins &&
                positions[i] < Burst::dataPins + addrSymbols) {
                res.addressError = true;
            } else {
                // Stored symbols: data pins sit at their pin index,
                // parity pins are shifted up by the virtual address
                // symbols.  Either way position/4 names the x4 chip
                // once the virtual offset is removed.
                const unsigned pin = positions[i] < Burst::dataPins
                                         ? positions[i]
                                         : positions[i] - addrSymbols;
                res.correctedChips |= 1u << (pin / Burst::pinsPerChip);
            }
        }
        if (res.addressError) {
            // Precise diagnosis: the corrected virtual symbols are the
            // address DRAM actually used (Figure 5b).
            uint32_t recovered = 0;
            for (unsigned j = 0; j < addrSymbols; ++j) {
                recovered |= static_cast<uint32_t>(
                                 received[Burst::dataPins + j])
                             << (8 * j);
            }
            res.recoveredAddress = recovered;
        }
        return res;
      }

      case RsCodec::Status::Uncorrectable:
        res.status = EccStatus::Uncorrectable;
        return res;
    }
    return res;
}

// ---------------------------------------------------------------------
// EDeccAmd: 4 x RS(19, 17); positions 0..15 chip symbols, 16 address
// (virtual), 17..18 parity.
// ---------------------------------------------------------------------

EDeccAmd::EDeccAmd()
    : rs(dataChips + 1 + checkChips, dataChips + 1)
{
}

Burst
EDeccAmd::encode(const BitVec &data, uint32_t mtbAddr) const
{
    AIECC_ASSERT(data.size() == Burst::dataBits, "eDECC encode: bad size");
    Burst out;
    out.setData(data);

    // Lane-minor interleave with the per-word address byte as the
    // seventeenth message symbol of each lane.
    GfElem messages[(dataChips + 1) * numWords];
    for (unsigned chip = 0; chip < dataChips; ++chip)
        out.amdChipSymbols(chip, &messages[chip * numWords]);
    for (unsigned w = 0; w < numWords; ++w)
        messages[dataChips * numWords + w] = addrByte(mtbAddr, w);

    GfElem parities[checkChips * numWords];
    rs.parityBatch(messages, parities, numWords);
    for (unsigned j = 0; j < checkChips; ++j)
        out.setAmdChipSymbols(dataChips + j, &parities[j * numWords]);
    return out;
}

EccResult
EDeccAmd::decode(const Burst &burst, uint32_t mtbAddr) const
{
    GfElem received[(dataChips + 1 + checkChips) * numWords];
    for (unsigned chip = 0; chip < dataChips; ++chip)
        burst.amdChipSymbols(chip, &received[chip * numWords]);
    for (unsigned w = 0; w < numWords; ++w)
        received[dataChips * numWords + w] = addrByte(mtbAddr, w);
    for (unsigned j = 0; j < checkChips; ++j)
        burst.amdChipSymbols(dataChips + j,
                             &received[(dataChips + 1 + j) * numWords]);

    RsCodec::LaneResult lanes[numWords];
    rs.decodeBatch(received, numWords, lanes, ws);

    EccResult res;
    bool anyCorrected = false;
    uint32_t recovered = 0;
    bool addrRecovered = false;

    for (unsigned w = 0; w < numWords; ++w) {
        switch (lanes[w].status) {
          case RsCodec::Status::Ok:
            recovered |= static_cast<uint32_t>(addrByte(mtbAddr, w))
                         << (8 * w);
            break;
          case RsCodec::Status::Corrected:
            anyCorrected = true;
            res.symbolsCorrected += lanes[w].numPositions;
            for (unsigned i = 0; i < lanes[w].numPositions; ++i) {
                if (lanes[w].positions[i] == dataChips) {
                    res.addressError = true;
                } else {
                    // Symbols past the virtual address slot belong to
                    // the parity chips, one step down.
                    const unsigned chip =
                        lanes[w].positions[i] < dataChips
                            ? lanes[w].positions[i]
                            : lanes[w].positions[i] - 1;
                    res.correctedChips |= 1u << chip;
                }
            }
            recovered |= static_cast<uint32_t>(
                             received[dataChips * numWords + w])
                         << (8 * w);
            addrRecovered = true;
            break;
          case RsCodec::Status::Uncorrectable:
            res.status = EccStatus::Uncorrectable;
            res.data = burst.data();
            return res;
        }
    }

    Burst corrected = burst;
    for (unsigned chip = 0; chip < dataChips; ++chip)
        corrected.setAmdChipSymbols(chip, &received[chip * numWords]);
    res.status = anyCorrected ? EccStatus::Corrected : EccStatus::Clean;
    res.data = corrected.data();
    if (res.addressError && addrRecovered)
        res.recoveredAddress = recovered;
    return res;
}

} // namespace aiecc
