/**
 * @file
 * Trace generation and replay: run a synthetic access trace through a
 * live protection stack while CCCA transmission noise fires at a
 * configurable rate, and account for what reaches the consumer — the
 * system-level view that connects the workload model to the
 * mechanism-level campaigns.
 */

#ifndef AIECC_WORKLOAD_TRACE_HH
#define AIECC_WORKLOAD_TRACE_HH

#include <map>
#include <vector>

#include "aiecc/stack.hh"
#include "obs/json.hh"
#include "workload/workload.hh"

namespace aiecc
{

/** One trace entry. */
struct TraceRecord
{
    bool write = false;
    MtbAddress addr;
};

/**
 * Generate an access trace with the same locality/mix model the
 * characterizer uses.
 *
 * @param params Workload knobs (readFrac / rowHitRate / seed used).
 * @param accesses Trace length.
 * @param geom Address geometry.
 */
std::vector<TraceRecord> generateTrace(const WorkloadParams &params,
                                       uint64_t accesses,
                                       const Geometry &geom = Geometry{});

/** Noise model for a replay. */
struct ReplayConfig
{
    /** Probability a command edge suffers a transmission error. */
    double edgeErrorRate = 0.0;
    /** Of erroneous edges: fraction with 2 flipped pins (rest 1). */
    double twoPinFrac = 0.3;
    uint64_t seed = 0x2E7A1;
};

/** What the consumer experienced during a replay. */
struct ReplayReport
{
    uint64_t accesses = 0;
    uint64_t commandEdges = 0;
    uint64_t injectedErrors = 0;
    uint64_t detections = 0;
    uint64_t retries = 0;       ///< accesses re-executed after a flag
    uint64_t flaggedReads = 0;  ///< DUEs delivered instead of bad data
    uint64_t corruptReads = 0;  ///< wrong data silently consumed (SDC)
    std::map<Mechanism, uint64_t> byMechanism;

    /** Serialize all fields as one JSON object. */
    void writeJson(obs::JsonWriter &w) const;
};

/**
 * Replay @p trace through @p stack under transmission noise.
 *
 * Writes deposit deterministic, address+version-derived payloads;
 * every read of a previously-written block is checked against the
 * expected payload to count silent corruption.  Any detection triggers
 * one retry of the access (command-replay recovery, §IV-G).
 *
 * When the stack carries an observer, the replay mirrors its report
 * into the registry ("replay.accesses", "stack.retries",
 * "replay.flagged_reads", "replay.corrupt_reads") and emits one Retry
 * trace event per re-executed access, so counter totals cross-check
 * against the returned ReplayReport.
 */
ReplayReport replayTrace(ProtectionStack &stack,
                         const std::vector<TraceRecord> &trace,
                         const ReplayConfig &config);

} // namespace aiecc

#endif // AIECC_WORKLOAD_TRACE_HH
