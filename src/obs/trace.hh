/**
 * @file
 * Structured event tracing for the protection stack.
 *
 * Producers emit flat TraceEvents (kind + cycle timestamp + a small,
 * schema-stable payload) through the TraceSink interface.  Two sinks
 * are provided: a bounded in-memory ring for tests and interactive
 * debugging, and a JSONL file sink that streams one JSON object per
 * line for offline analysis and trend tracking.
 */

#ifndef AIECC_OBS_TRACE_HH
#define AIECC_OBS_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hh"

namespace aiecc
{
namespace obs
{

/**
 * The event-kind schema: one X-macro entry per kind, pairing the
 * enumerator with its JSONL "kind" string.  The enum, the count, and
 * both name mappings are generated from this single list, so adding a
 * kind here is the *only* edit needed — parsers that iterate
 * numEventKinds and the name round-trip can no longer drift.
 */
#define AIECC_EVENT_KINDS(X)                                              \
    /* a command edge left the controller */                              \
    X(CommandIssued, "command")                                           \
    /* an injected fault mutated the edge in flight */                    \
    X(PinCorruption, "pin_corruption")                                    \
    /* a mechanism fired (label = mechanism name) */                      \
    X(Detection, "detection")                                             \
    /* an access was re-executed after a flag */                          \
    X(Retry, "retry")                                                     \
    /* full error-recovery reset (resync/drain/PREA) */                   \
    X(Recovery, "recovery")                                               \
    /* corrected data written back (redirect scrub) */                    \
    X(Scrub, "scrub")                                                     \
    /* end-state classification (label = DUE/SDC/...) */                  \
    X(Classification, "classification")                                   \
    /* bank quarantine / rank-degraded transition */                      \
    X(Escalation, "escalation")                                           \
    /* background patrol corrected a stored block */                      \
    X(PatrolScrub, "patrol_scrub")                                        \
    /* lineage: a campaign injected a fault (label = site) */             \
    X(FaultInject, "fault_inject")                                        \
    /* lineage: fault reached its terminal state */                       \
    X(FaultResolve, "fault_resolve")                                      \
    /* eDECC pinpointed a wrong address (label = suspect pin) */          \
    X(Diagnosis, "diagnosis")                                             \
    /* RAS health-state transition (label = component) */                 \
    X(RasHealth, "ras_health")                                            \
    /* RAS recommended action (label = action name) */                    \
    X(RasAction, "ras_action")

/** What happened (the JSONL "kind" field). */
enum class EventKind
{
#define AIECC_EVENT_KIND_ENUM(kind, name) kind,
    AIECC_EVENT_KINDS(AIECC_EVENT_KIND_ENUM)
#undef AIECC_EVENT_KIND_ENUM
};

/** Number of EventKind enumerators (parsers iterate the schema). */
constexpr unsigned numEventKinds = []() consteval {
    unsigned n = 0;
#define AIECC_EVENT_KIND_COUNT(kind, name) ++n;
    AIECC_EVENT_KINDS(AIECC_EVENT_KIND_COUNT)
#undef AIECC_EVENT_KIND_COUNT
    return n;
}();

/** Printable event-kind name (the JSONL schema string). */
std::string eventKindName(EventKind kind);

/**
 * eventKindName() without the std::string: a view of the static
 * schema string.  Hot-path consumers (the RAS health monitor) match
 * kinds without allocating.
 */
std::string_view eventKindNameView(EventKind kind);

/**
 * Inverse of eventKindName(): the kind whose schema string is
 * @p name, or nullopt for an unknown string.  Used by trace-file
 * parsers (tools/aiecc-trace) to round-trip recorded events.
 */
std::optional<EventKind> eventKindFromName(std::string_view name);

/** One structured observation, timestamped in controller cycles. */
struct TraceEvent
{
    EventKind kind = EventKind::CommandIssued;
    uint64_t cycle = 0;
    /** Kind-specific tag: mechanism, command mnemonic, outcome class. */
    std::string label;
    /** Kind-specific number: packed address, pin count, retry depth. */
    uint64_t value = 0;
    /** Free-form human-readable context. */
    std::string detail;
    /**
     * Lineage fault ID this event is attributed to (obs/lineage.hh
     * derivation rule); 0 = no fault context, and the "fault" JSON
     * member is omitted so pre-lineage consumers see the old schema.
     */
    uint64_t faultId = 0;

    /** Serialize as one self-contained JSON object value. */
    void writeJson(JsonWriter &w) const;
};

/** Consumer interface; implementations must tolerate bursts. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent &event) = 0;
    /** Push buffered output to its destination (default: nothing). */
    virtual void flush() {}
};

/**
 * A bounded in-memory ring: keeps the newest @p capacity events and
 * counts what it had to drop.
 */
class RingTraceSink : public TraceSink
{
  public:
    explicit RingTraceSink(size_t capacity);

    void record(const TraceEvent &event) override;

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Retained events of one kind, oldest first. */
    std::vector<TraceEvent> eventsOfKind(EventKind kind) const;

    size_t size() const { return count < cap ? count : cap; }
    size_t capacity() const { return cap; }
    /** Events overwritten because the ring was full. */
    uint64_t dropped() const { return count < cap ? 0 : count - cap; }
    void clear();

  private:
    size_t cap;
    uint64_t count = 0; ///< total record() calls
    std::vector<TraceEvent> ring;
};

/**
 * An unbounded in-memory sink: keeps every event, in order.  Sharded
 * campaigns capture each worker's full event stream with one of
 * these and re-emit in shard order — lineage tracing makes the
 * per-trial event count variable, so a pre-sized ring can't give the
 * loss-free capture the determinism gates need.
 */
class VectorTraceSink : public TraceSink
{
  public:
    void record(const TraceEvent &event) override { log.push_back(event); }

    /** Recorded events, oldest first. */
    const std::vector<TraceEvent> &events() const { return log; }

    size_t size() const { return log.size(); }
    void clear() { log.clear(); }

  private:
    std::vector<TraceEvent> log;
};

/**
 * Streams one compact JSON object per event to a file (JSONL).  The
 * file is created on construction; ok() reports open failure.  The
 * destructor flushes and closes.  Events that could not be written —
 * because the file never opened or a write failed — are counted, not
 * silently lost: dropped() is the number of record() calls that left
 * no complete line behind, ioErrors() the stream-level failures seen.
 */
class JsonlTraceSink : public TraceSink
{
  public:
    explicit JsonlTraceSink(const std::string &path);
    ~JsonlTraceSink() override;

    JsonlTraceSink(const JsonlTraceSink &) = delete;
    JsonlTraceSink &operator=(const JsonlTraceSink &) = delete;

    bool ok() const { return file != nullptr; }

    /** Events fully written (a trailing flush may still fail). */
    uint64_t recorded() const { return lines; }

    /** record() calls that produced no complete line. */
    uint64_t dropped() const { return drops; }

    /** Write/flush errors observed on the stream. */
    uint64_t ioErrors() const { return errors; }

    void record(const TraceEvent &event) override;
    void flush() override;

  private:
    std::FILE *file = nullptr;
    uint64_t lines = 0;
    uint64_t drops = 0;
    uint64_t errors = 0;
};

} // namespace obs
} // namespace aiecc

#endif // AIECC_OBS_TRACE_HH
