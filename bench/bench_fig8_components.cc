/**
 * @file
 * Figure 8 reproduction: the contribution of each AIECC component —
 * eDECC, eWCRC, address protection (both), CSTC, eCAP, command
 * protection (CSTC+eCAP), eDECC+eWCRC+eCAP, and full AIECC — to CCCA
 * error coverage, per error model and command pattern.
 */

#include <cstdio>

#include "aiecc/cost_model.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "inject/campaign.hh"

using namespace aiecc;

namespace
{

struct ComponentConfig
{
    const char *name;
    Mechanisms mech;
};

std::vector<ComponentConfig>
componentConfigs()
{
    // The Figure 8 x-axis, expressed as mechanism subsets.  eDECC is
    // the QPC combined organization; eWCRC/eCAP imply their base
    // DDR4 mechanisms extended per Section IV.
    std::vector<ComponentConfig> configs;

    Mechanisms edecc;
    edecc.ecc = EccScheme::EDeccQpc;
    configs.push_back({"eDECC", edecc});

    Mechanisms ewcrc;
    ewcrc.wcrc = WcrcMode::DataAddress;
    configs.push_back({"eWCRC", ewcrc});

    Mechanisms addr = edecc;
    addr.wcrc = WcrcMode::DataAddress;
    configs.push_back({"addr (eDECC+eWCRC)", addr});

    Mechanisms cstc;
    cstc.cstc = true;
    configs.push_back({"CSTC", cstc});

    Mechanisms ecap;
    ecap.parity = ParityMode::ECap;
    configs.push_back({"eCAP", ecap});

    Mechanisms cmd = cstc;
    cmd.parity = ParityMode::ECap;
    configs.push_back({"cmd (CSTC+eCAP)", cmd});

    Mechanisms noCstc = addr;
    noCstc.parity = ParityMode::ECap;
    configs.push_back({"eDECC+eWCRC+eCAP", noCstc});

    configs.push_back(
        {"AIECC", Mechanisms::forLevel(ProtectionLevel::Aiecc)});
    return configs;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parse(argc, argv);
    const unsigned allPinSamples =
        opt.allPin ? opt.allPin : (opt.quick ? 15u : 50u);
    const bool twoPin = !opt.quick;

    bench::banner("Figure 8: coverage contribution of each AIECC "
                  "component");

    // model -> component -> pattern -> covered fraction, as printed.
    std::vector<std::pair<
        std::string,
        std::vector<std::pair<std::string, std::vector<double>>>>>
        all;

    // Per-component cost accountants and aggregate coverage, shared
    // across every sweep of that component (the Pareto inputs).
    const auto configs = componentConfigs();
    std::vector<obs::CostAccountant> componentCost;
    for (const auto &config : configs)
        componentCost.emplace_back(makeCostModel(config.mech));
    std::vector<CampaignStats> componentTotal(configs.size());

    for (const char *model : {"1-pin", "2-pin", "all-pin"}) {
        if (!twoPin && std::string(model) == "2-pin")
            continue;
        std::printf("---- %s errors (coverage per pattern) ----\n",
                    model);
        TextTable t;
        std::vector<std::string> head{"component"};
        for (CommandPattern pattern : allPatterns())
            head.push_back(patternName(pattern));
        t.header(head);

        std::vector<std::pair<std::string, std::vector<double>>> rows;
        for (size_t ci = 0; ci < configs.size(); ++ci) {
            const auto &config = configs[ci];
            std::vector<std::string> row{config.name};
            std::vector<double> covered;
            for (CommandPattern pattern : allPatterns()) {
                InjectionCampaign camp(config.mech);
                camp.setCostAccountant(&componentCost[ci]);
                CampaignStats stats;
                if (std::string(model) == "1-pin")
                    stats = camp.sweepOnePin(pattern);
                else if (std::string(model) == "2-pin")
                    stats = camp.sweepTwoPin(pattern);
                else
                    stats = camp.sweepAllPin(pattern, allPinSamples);
                row.push_back(TextTable::pct(stats.coveredFrac()));
                componentTotal[ci].merge(stats);
                covered.push_back(stats.coveredFrac());
            }
            t.row(row);
            rows.emplace_back(config.name, std::move(covered));
        }
        std::printf("%s\n", t.str().c_str());
        all.emplace_back(model, std::move(rows));
    }

    bench::CostEntries costs;
    std::vector<bench::ParetoPoint> pareto;
    for (size_t ci = 0; ci < configs.size(); ++ci) {
        costs.emplace_back(configs[ci].name, componentCost[ci]);
        pareto.push_back(bench::ParetoPoint::of(
            configs[ci].name, "covered_frac",
            componentTotal[ci].coveredFrac(), componentCost[ci]));
    }
    bench::printParetoTable(pareto);

    bench::writeJsonArtifact(
        opt, "fig8_components", costs, pareto, [&](obs::JsonWriter &w) {
            w.beginObject();
            w.kv("allpin_samples", allPinSamples);
            w.key("models");
            w.beginObject();
            for (const auto &[model, rows] : all) {
                w.key(model);
                w.beginObject();
                for (const auto &[component, covered] : rows) {
                    w.key(component);
                    w.beginObject();
                    const auto patterns = allPatterns();
                    for (size_t i = 0; i < patterns.size(); ++i)
                        w.kv(patternName(patterns[i]), covered[i]);
                    w.endObject();
                }
                w.endObject();
            }
            w.endObject();
            w.endObject();
        });

    std::printf(
        "Paper cross-checks (Figure 8 discussion):\n"
        "  * address protection (eDECC+eWCRC) dominates for WR and RD "
        "errors;\n"
        "  * eCAP is the most effective mechanism against 1-pin ACT "
        "errors;\n"
        "  * CSTC leads for all-pin ACT noise (garbage commands break "
        "protocol);\n"
        "  * only the full combination reaches complete coverage.\n");
    return 0;
}
