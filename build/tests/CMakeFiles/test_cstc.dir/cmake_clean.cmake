file(REMOVE_RECURSE
  "CMakeFiles/test_cstc.dir/test_cstc.cc.o"
  "CMakeFiles/test_cstc.dir/test_cstc.cc.o.d"
  "test_cstc"
  "test_cstc.pdb"
  "test_cstc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cstc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
