/**
 * @file
 * GDDR5 substrate for the AIECC generality study (Section VI,
 * "Applicability to Other Memories").
 *
 * GDDR5 differs from DDR4 in the ways that matter to AIECC:
 *  - there is no dedicated CA-parity pin and no ACT_n pin (commands
 *    decode from RAS/CAS/WE as in DDR3);
 *  - every byte lane carries an EDC pin that returns a CRC-8 of the
 *    transferred data for *both* reads and writes.
 *
 * The paper's sketch, implemented here: eWCRC folds the MTB address
 * into the write EDC; missing writes and command errors are caught by
 * folding the write-toggle (WRT) bit and the CA parity of the last
 * command into the *read* EDC over the same pin; and the CSTC carries
 * over with GDDR5 timing.
 */

#ifndef AIECC_GDDR5_GDDR5_HH
#define AIECC_GDDR5_GDDR5_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/bitvec.hh"
#include "common/rng.hh"
#include "ddr4/command.hh" // Cycle, CmdType names reused

namespace aiecc
{
namespace gddr5
{

/** The GDDR5 command/address pins of this model (no PAR, no ACT_n). */
enum class Pin : uint8_t
{
    A0 = 0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12,
    BA0 = 13, BA1, BA2, BA3,
    WE = 17,
    CAS = 18,
    RAS = 19,
    CS = 20,
    CKE = 21,
};

inline constexpr unsigned numCaPins = 22;

/** Printable pin name. */
std::string pinName(Pin pin);

/** Pin levels for one command edge. */
struct PinWord
{
    uint32_t levels = 0;

    bool get(Pin pin) const
    {
        return (levels >> static_cast<unsigned>(pin)) & 1;
    }
    void
    set(Pin pin, bool v)
    {
        const uint32_t m = 1u << static_cast<unsigned>(pin);
        levels = v ? (levels | m) : (levels & ~m);
    }
    void flip(Pin pin) { levels ^= 1u << static_cast<unsigned>(pin); }
    bool operator==(const PinWord &other) const = default;

    /** Even parity over all CA pins (folded into the read EDC). */
    bool caParity() const;
};

/** A GDDR5 logical command (x32 device, 16 banks, BL8). */
struct Command
{
    CmdType type = CmdType::Des;
    unsigned bank = 0;  ///< 4 bank-address bits
    unsigned row = 0;   ///< 13 row bits (A12..A0)
    unsigned col = 0;   ///< 10 column bits

    bool operator==(const Command &other) const = default;
    std::string toString() const;

    static Command act(unsigned bank, unsigned row);
    static Command rd(unsigned bank, unsigned col);
    static Command wr(unsigned bank, unsigned col);
    static Command pre(unsigned bank);
    static Command ref();
    static Command nop();
};

/** Decoded edge (CS gating as in DDR4). */
struct Decoded
{
    Command cmd;
    bool executed = true;
};

/** Render a command onto the CA pins. */
PinWord encodeCommand(const Command &cmd);

/** The command a device latches from (possibly corrupted) pins. */
Decoded decodeCommand(const PinWord &pins);

/** One x32 burst: 32 DQ pins x 8 beats, 4 EDC byte lanes. */
struct Burst
{
    static constexpr unsigned numPins = 32;
    static constexpr unsigned numBeats = 8;
    static constexpr unsigned numLanes = 4; ///< EDC pin per byte lane
    static constexpr unsigned pinsPerLane = 8;
    static constexpr unsigned dataBits = numPins * numBeats; // 256

    std::array<uint8_t, numPins> pinBits{};

    bool operator==(const Burst &other) const = default;

    bool
    getBit(unsigned pin, unsigned beat) const
    {
        return (pinBits[pin] >> beat) & 1;
    }
    void
    setBit(unsigned pin, unsigned beat, bool v)
    {
        const uint8_t m = static_cast<uint8_t>(1u << beat);
        pinBits[pin] = v ? (pinBits[pin] | m)
                         : static_cast<uint8_t>(pinBits[pin] & ~m);
    }

    /** The 64 bits a lane transfers (8 pins x 8 beats). */
    BitVec laneBits(unsigned lane) const;

    BitVec data() const;
    void setData(const BitVec &d);
    void randomize(Rng &rng);
};

/**
 * The EDC checksum for one lane.
 *
 * @param burst The transferred burst.
 * @param lane Byte lane (0..3).
 * @param foldWord Extra protected state XOR-folded into the CRC
 *        input: the MTB address for eWCRC writes; address + WRT + CA
 *        parity for extended read EDC (0 for baseline GDDR5 EDC).
 * @return The 8-bit checksum returned on the lane's EDC pin.
 */
uint8_t edcChecksum(const Burst &burst, unsigned lane,
                    uint32_t foldWord);

/** The per-burst EDC vector (one byte per lane). */
using EdcWord = std::array<uint8_t, Burst::numLanes>;

/** Compute all four lanes. */
EdcWord edcAll(const Burst &burst, uint32_t foldWord);

} // namespace gddr5
} // namespace aiecc

#endif // AIECC_GDDR5_GDDR5_HH
