/**
 * @file
 * Tests for the in-band recovery engine (§IV-G): bounded alert-driven
 * retry through the real controller path, honest exhaustion under
 * intermittent faults, the leaky-bucket escalation ladder, eCAP
 * write-toggle resynchronization, and the patrol scrubber — plus an
 * environment-gated soak loop for the nightly CI job.
 */

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aiecc/stack.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "inject/campaign.hh"
#include "inject/montecarlo.hh"
#include "obs/observer.hh"
#include "obs/trace.hh"

namespace aiecc
{
namespace
{

BitVec
randomData(Rng &rng)
{
    BitVec d(Burst::dataBits);
    for (size_t i = 0; i < d.size(); ++i)
        d.set(i, rng.chance(0.5));
    return d;
}

StackConfig
aieccConfig()
{
    StackConfig cfg;
    cfg.mech = Mechanisms::forLevel(ProtectionLevel::Aiecc);
    return cfg;
}

// ---------------------------------------------------------------------
// Transient faults: the engine, not a golden-restore replay, carries
// every detected single-edge error back to a corrected state.
// ---------------------------------------------------------------------

TEST(Recovery, TransientOnePinSweepsRecoverInBand)
{
    InjectionCampaign campaign(
        Mechanisms::forLevel(ProtectionLevel::Aiecc));
    uint64_t episodes = 0;
    unsigned recovered = 0;
    for (CommandPattern pattern : allPatterns()) {
        const CampaignStats stats = campaign.sweepOnePin(pattern);
        EXPECT_EQ(stats.coveredFrac(), 1.0)
            << patternName(pattern) << " leaked silent corruption";
        EXPECT_EQ(stats.sdc, 0u) << patternName(pattern);
        EXPECT_EQ(stats.mdc, 0u) << patternName(pattern);
        episodes += stats.recoveryEpisodes;
        recovered += stats.recoveredFirstTry + stats.recoveredAfterRetries;
    }
    // The sweeps flag plenty of errors; recovery must actually run.
    EXPECT_GT(episodes, 0u);
    EXPECT_GT(recovered, 0u);
}

// ---------------------------------------------------------------------
// Intermittent faults: a corruptor that outlives the retry window
// exhausts the attempt budget deterministically.
// ---------------------------------------------------------------------

TEST(Recovery, IntermittentFaultExhaustsRetryBudget)
{
    InjectionCampaign campaign(
        Mechanisms::forLevel(ProtectionLevel::Aiecc));
    // A3 stays flipped for 40 edges: the WR is blocked by eWCRC and
    // every replay edge re-corrupts, so the episode must run out.
    const TrialResult tr =
        campaign.runTrial(CommandPattern::Wr,
                          PinError::intermittent(Pin::A3, 40));
    EXPECT_TRUE(tr.detected);
    EXPECT_TRUE(tr.retryExhausted);
    EXPECT_EQ(tr.recovery, RecoveryClass::Exhausted);
    EXPECT_GT(tr.recoveryEpisodes, 0u);
    EXPECT_GE(tr.recoveryAttempts, 3u);
    // Nothing silent: the fault surfaces as a detected residual.
    EXPECT_NE(tr.outcome, Outcome::Sdc);
    EXPECT_NE(tr.outcome, Outcome::Mdc);
    EXPECT_NE(tr.outcome, Outcome::SdcMdc);

    // Determinism: the same trial reproduces the same record.
    InjectionCampaign again(
        Mechanisms::forLevel(ProtectionLevel::Aiecc));
    const TrialResult tr2 =
        again.runTrial(CommandPattern::Wr,
                       PinError::intermittent(Pin::A3, 40));
    EXPECT_EQ(tr2.outcome, tr.outcome);
    EXPECT_EQ(tr2.recoveryEpisodes, tr.recoveryEpisodes);
    EXPECT_EQ(tr2.recoveryAttempts, tr.recoveryAttempts);
}

TEST(Recovery, TransientVersusIntermittentTaxonomy)
{
    // The same pin transitions from recovered to exhausted purely by
    // how long the fault persists — the attempt bound decides.
    InjectionCampaign campaign(
        Mechanisms::forLevel(ProtectionLevel::Aiecc));
    const TrialResult transient =
        campaign.runTrial(CommandPattern::Wr, PinError::onePin(Pin::A3));
    EXPECT_TRUE(transient.detected);
    EXPECT_FALSE(transient.retryExhausted);
    EXPECT_TRUE(transient.recovery == RecoveryClass::FirstTry ||
                transient.recovery == RecoveryClass::AfterRetries);
    EXPECT_EQ(transient.outcome, Outcome::Corrected);
}

// ---------------------------------------------------------------------
// Escalation ladder: repeated exhaustion quarantines the bank and,
// past the threshold, degrades the rank.
// ---------------------------------------------------------------------

TEST(Recovery, QuarantineAndRankDegradeEscalation)
{
    StackConfig cfg = aieccConfig();
    cfg.recovery.bucketCapacity = 1;
    cfg.recovery.rankDegradeBanks = 1;
    cfg.recovery.backoffCycles = 1;
    ProtectionStack stack(cfg);
    Rng rng(0xE5CA1);
    const MtbAddress addr{0, 0, 0, 7, 2};
    stack.write(addr, randomData(rng));

    // A persistent A3 fault: every command edge is corrupted, so each
    // episode fails all its attempts and charges the bank's bucket.
    stack.setPinCorruptor([](uint64_t, PinWord &pins) {
        pins.flip(Pin::A3);
    });
    for (int i = 0; i < 4; ++i)
        stack.write(addr, randomData(rng));
    stack.setPinCorruptor({});

    const RecoveryStats &stats = stack.recoveryStats();
    EXPECT_GT(stats.exhausted, 0u);
    EXPECT_GT(stats.quarantines, 0u);
    EXPECT_TRUE(stack.recovery().quarantined(addr.flatBank(stack.geometry())));
    EXPECT_GE(stack.recovery().quarantinedBanks(), 1u);
    EXPECT_TRUE(stack.recovery().rankDegraded());
    EXPECT_GT(stats.rankDegrades, 0u);
}

// ---------------------------------------------------------------------
// eCAP write-toggle resynchronization: a lost WR is detected on the
// next edge and the engine replays it from the controller's buffer.
// ---------------------------------------------------------------------

TEST(Recovery, WrtResyncReplaysLostWrite)
{
    ProtectionStack stack(aieccConfig());
    Rng rng(0x14EC);
    const MtbAddress addr{0, 0, 0, 7, 2};
    stack.write(addr, randomData(rng));

    // Deselect the next WR in flight: a missing write (§IV-D).
    const BitVec fresh = randomData(rng);
    const uint64_t next = stack.controller().commandsIssued();
    stack.setPinCorruptor([next](uint64_t idx, PinWord &pins) {
        if (idx == next)
            pins.flip(Pin::CS);
    });
    stack.write(addr, fresh);
    stack.setPinCorruptor({});

    // The toggle mismatch surfaces on the next edge; the engine must
    // resync and replay the buffered write as part of recovery.
    stack.issueNop();
    const RecoveryStats &stats = stack.recoveryStats();
    EXPECT_GT(stats.episodes, 0u);
    EXPECT_GT(stats.wrtResyncs, 0u);
    EXPECT_GT(stats.recovered, 0u);
    EXPECT_EQ(stats.exhausted, 0u);
    EXPECT_EQ(stack.controller().wrtBit(), stack.rank().wrtBit());

    // The replayed write actually landed.
    stack.clearDetections();
    const auto out = stack.read(addr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(out.data, fresh);
    EXPECT_TRUE(stack.detections().empty());
}

// ---------------------------------------------------------------------
// Patrol scrubbing: accumulated transient storage flips are read,
// corrected, and written back before they can pile up.
// ---------------------------------------------------------------------

TEST(Recovery, PatrolScrubRemovesAccumulatedFlips)
{
    StackConfig cfg;
    cfg.mech = Mechanisms::forLevel(ProtectionLevel::Ddr4Decc);
    cfg.recovery.patrolPeriod = 1; // patrol one block per access
    ProtectionStack stack(cfg);
    Rng rng(0x5C2B);

    std::vector<MtbAddress> addrs = {{0, 0, 0, 7, 2},
                                     {0, 1, 0, 7, 2},
                                     {0, 2, 1, 9, 3},
                                     {0, 3, 2, 11, 4}};
    for (const auto &a : addrs)
        stack.write(a, randomData(rng));
    std::vector<Burst> pristine;
    for (const auto &a : addrs)
        pristine.push_back(stack.rank().peek(a));

    // Accumulate one transient flip in three different blocks.
    for (size_t i = 1; i < addrs.size(); ++i) {
        Burst b = stack.rank().peek(addrs[i]);
        b.setBit(0, 0, !b.getBit(0, 0));
        stack.rank().poke(addrs[i], b);
    }

    // Drive clean accesses; the patrol walks the stored blocks
    // round-robin and scrubs what it corrects.
    for (int i = 0; i < 12; ++i)
        stack.read(addrs[0]);

    const RecoveryStats &stats = stack.recoveryStats();
    EXPECT_GE(stats.patrolReads, addrs.size());
    EXPECT_GE(stats.patrolScrubs, 3u);
    for (size_t i = 0; i < addrs.size(); ++i) {
        EXPECT_EQ(stack.rank().peek(addrs[i]), pristine[i])
            << "block " << i << " not restored";
    }
}

// ---------------------------------------------------------------------
// Observability: engine activity lands in stack.recovery.* counters
// and the structured trace stream.
// ---------------------------------------------------------------------

TEST(Recovery, CountersAndTraceEventsFlow)
{
    obs::StatsRegistry reg;
    obs::RingTraceSink ring(256);
    obs::Observer observer(&reg);
    observer.addSink(&ring);

    StackConfig cfg = aieccConfig();
    cfg.observer = &observer;
    ProtectionStack stack(cfg);
    Rng rng(0x0B5E);
    const MtbAddress addr{0, 0, 0, 7, 2};
    stack.write(addr, randomData(rng));

    const uint64_t next = stack.controller().commandsIssued();
    stack.setPinCorruptor([next](uint64_t idx, PinWord &pins) {
        if (idx == next)
            pins.flip(Pin::CS);
    });
    stack.write(addr, randomData(rng));
    stack.setPinCorruptor({});
    stack.issueNop();

    EXPECT_GE(reg.counterValue("stack.recovery.episodes"), 1u);
    EXPECT_GE(reg.counterValue("stack.recovery.recovered"), 1u);
    EXPECT_GE(reg.counterValue("stack.recovery.wrt_resyncs"), 1u);
    EXPECT_EQ(reg.counterValue("stack.recovery.exhausted"), 0u);
    EXPECT_FALSE(ring.eventsOfKind(obs::EventKind::Retry).empty());
    EXPECT_FALSE(ring.eventsOfKind(obs::EventKind::Recovery).empty());
}

TEST(Recovery, EscalationAndPatrolEventsFlow)
{
    obs::StatsRegistry reg;
    obs::RingTraceSink ring(512);
    obs::Observer observer(&reg);
    observer.addSink(&ring);

    StackConfig cfg = aieccConfig();
    cfg.observer = &observer;
    cfg.recovery.bucketCapacity = 1;
    cfg.recovery.rankDegradeBanks = 1;
    cfg.recovery.backoffCycles = 1;
    cfg.recovery.patrolPeriod = 4;
    ProtectionStack stack(cfg);
    Rng rng(0xE5CB);
    const MtbAddress addr{0, 0, 0, 7, 2};
    stack.write(addr, randomData(rng));

    stack.setPinCorruptor([](uint64_t, PinWord &pins) {
        pins.flip(Pin::A3);
    });
    for (int i = 0; i < 4; ++i)
        stack.write(addr, randomData(rng));
    stack.setPinCorruptor({});

    // Leave a correctable flip in storage for the patrol to find.
    const MtbAddress clean{0, 1, 1, 9, 3};
    stack.write(clean, randomData(rng));
    Burst b = stack.rank().peek(addr);
    b.setBit(0, 0, !b.getBit(0, 0));
    stack.rank().poke(addr, b);
    for (int i = 0; i < 12; ++i)
        stack.read(clean);

    EXPECT_GE(reg.counterValue("stack.recovery.quarantines"), 1u);
    EXPECT_GE(reg.counterValue("stack.recovery.rank_degrades"), 1u);
    EXPECT_FALSE(ring.eventsOfKind(obs::EventKind::Escalation).empty());
    EXPECT_FALSE(ring.eventsOfKind(obs::EventKind::PatrolScrub).empty());
}

// ---------------------------------------------------------------------
// Monte-Carlo retry: a persistent address fault burns the re-read
// budget instead of being optimistically classified as corrected.
// ---------------------------------------------------------------------

TEST(Recovery, MonteCarloPersistentAddressFaultExhausts)
{
    DataMonteCarlo transientMc(EccScheme::EDeccQpc, 0x7AB1E3);
    const MonteCarloCell transientCell = transientMc.runCell(
        DataErrorModel::None, AddrErrorModel::Bit1, 200);
    // Transient faults retry clean: CE-R+ dominates, no DUEs.
    EXPECT_GT(transientCell.count(DataOutcome::CeRPlus) +
                  transientCell.count(DataOutcome::CeR),
              0u);

    DataMonteCarlo persistentMc(EccScheme::EDeccQpc, 0x7AB1E3);
    persistentMc.setRetryPolicy({3, 1.0}); // the fault never clears
    const MonteCarloCell persistentCell = persistentMc.runCell(
        DataErrorModel::None, AddrErrorModel::Bit1, 200);
    EXPECT_EQ(persistentCell.count(DataOutcome::CeR), 0u);
    EXPECT_EQ(persistentCell.count(DataOutcome::CeRPlus), 0u);
    // Every detected address error exhausts into a DUE.
    EXPECT_EQ(persistentCell.count(DataOutcome::Due),
              persistentCell.trials -
                  persistentCell.count(DataOutcome::NoError) -
                  persistentCell.count(DataOutcome::Sdc));
}

// ---------------------------------------------------------------------
// Soak loop (nightly CI): random intermittent faults must never
// produce silent corruption under AIECC.  Iterations default low for
// interactive runs; the nightly job raises AIECC_RECOVERY_SOAK_ITERS,
// may parallelize with AIECC_RECOVERY_SOAK_JOBS (iteration i draws
// its parameters from Rng::forStream(0x50AC, i), so the chosen faults
// — and the aggregate counters — are identical for any job count),
// and may set AIECC_RECOVERY_SOAK_TRACE to capture a JSONL trace.
// ---------------------------------------------------------------------

TEST(Recovery, SoakIntermittentFaultsNeverSilent)
{
    unsigned iters = 2;
    if (const char *env = std::getenv("AIECC_RECOVERY_SOAK_ITERS"))
        iters = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    unsigned jobs = 1;
    if (const char *env = std::getenv("AIECC_RECOVERY_SOAK_JOBS"))
        jobs = static_cast<unsigned>(std::strtoul(env, nullptr, 10));

    obs::StatsRegistry reg;
    obs::Observer observer(&reg);
    std::unique_ptr<obs::JsonlTraceSink> jsonl;
    if (const char *path = std::getenv("AIECC_RECOVERY_SOAK_TRACE")) {
        jsonl = std::make_unique<obs::JsonlTraceSink>(path);
        observer.addSink(jsonl.get());
    }

    const Mechanisms mech = Mechanisms::forLevel(ProtectionLevel::Aiecc);
    const auto pins = injectablePins(mech.parPinPresent());
    const auto patterns = allPatterns();

    // Fixed-size shards, each with its own registry and trace buffer;
    // gtest assertions are not thread-safe, so workers only record
    // failure descriptions and the owner reports them after the join.
    constexpr uint64_t shardSize = 16;
    const uint64_t shards = shardCount(iters, shardSize);
    std::vector<std::unique_ptr<obs::StatsRegistry>> shardStats(shards);
    std::vector<std::unique_ptr<obs::RingTraceSink>> shardTraces(shards);
    std::vector<std::vector<std::string>> shardFailures(shards);
    std::vector<unsigned> shardExhausted(shards, 0);

    runShards(shards, jobs, [&](uint64_t shard) {
        shardStats[shard] = std::make_unique<obs::StatsRegistry>();
        const uint64_t n = shardLength(iters, shardSize, shard);
        shardTraces[shard] =
            std::make_unique<obs::RingTraceSink>(n + 16);
        obs::Observer shardObs(shardStats[shard].get());
        shardObs.addSink(shardTraces[shard].get());
        const uint64_t base = shard * shardSize;
        for (uint64_t k = 0; k < n; ++k) {
            const uint64_t i = base + k;
            // Per-iteration stream: the drawn fault depends only on i,
            // never on which worker ran the neighbouring iterations.
            Rng rng = Rng::forStream(0x50AC, i);
            InjectionCampaign campaign(mech, 0x1019ECC + i);
            campaign.setObserver(&shardObs);
            const CommandPattern pattern =
                patterns[rng.below(patterns.size())];
            const Pin pin = pins[rng.below(pins.size())];
            const unsigned persistence =
                2 + static_cast<unsigned>(rng.below(29));
            const TrialResult tr = campaign.runTrial(
                pattern, PinError::intermittent(pin, persistence));
            if (tr.outcome == Outcome::Sdc ||
                tr.outcome == Outcome::Mdc ||
                tr.outcome == Outcome::SdcMdc) {
                shardFailures[shard].push_back(
                    outcomeName(tr.outcome) + " on " +
                    patternName(pattern) + " " + pinName(pin) + " x" +
                    std::to_string(persistence));
            }
            if (tr.retryExhausted)
                ++shardExhausted[shard];
        }
    });

    // Shard-order merge: same totals and trace stream for any jobs.
    unsigned exhausted = 0;
    for (uint64_t shard = 0; shard < shards; ++shard) {
        for (const std::string &failure : shardFailures[shard])
            ADD_FAILURE() << "silent corruption escaped: " << failure;
        reg.merge(*shardStats[shard]);
        ASSERT_EQ(shardTraces[shard]->dropped(), 0u);
        for (const auto &event : shardTraces[shard]->events())
            if (jsonl)
                jsonl->record(event);
        exhausted += shardExhausted[shard];
    }
    if (jsonl)
        observer.flush();
    // Sanity on the aggregate: the campaign counters saw every trial.
    EXPECT_EQ(reg.counterValue("campaign.trials"), iters);
    EXPECT_EQ(reg.counterValue("campaign.recovery.exhausted"), exhausted);
}

} // namespace
} // namespace aiecc
