/**
 * @file
 * A dependency-free streaming JSON writer.
 *
 * The observability layer serializes stats registries, trace events
 * and bench artifacts without pulling in an external JSON library:
 * JsonWriter emits syntactically valid JSON through a push interface
 * (beginObject/key/value/endObject), handling commas, string escaping
 * and non-finite doubles itself.  Misuse (a value where a key is
 * required, unbalanced end calls) panics — serialization bugs should
 * fail loudly in tests, not produce corrupt artifacts.
 */

#ifndef AIECC_OBS_JSON_HH
#define AIECC_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aiecc
{
namespace obs
{

/**
 * Streaming JSON document builder.
 *
 * Usage:
 * @code
 *   JsonWriter w;
 *   w.beginObject().key("trials").value(100).key("by").beginArray()
 *    .value("eCAP").endArray().endObject();
 *   w.writeFile("out.json");
 * @endcode
 */
class JsonWriter
{
  public:
    /** @param indent Spaces per nesting level (0 = compact). */
    explicit JsonWriter(int indent = 2) : indentWidth(indent) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Name the next member of the enclosing object. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text) { return value(std::string_view(text)); }
    JsonWriter &value(const std::string &text) { return value(std::string_view(text)); }
    JsonWriter &value(double number);
    JsonWriter &value(uint64_t number);
    JsonWriter &value(int64_t number);
    JsonWriter &value(int number) { return value(static_cast<int64_t>(number)); }
    JsonWriter &value(unsigned number) { return value(static_cast<uint64_t>(number)); }
    JsonWriter &value(bool flag);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** True once every begin has been matched by an end. */
    bool complete() const { return started && stack.empty(); }

    /** The document so far (panics unless complete()). */
    std::string str() const;

    /**
     * Write the document (plus a trailing newline) to @p path.
     * @return false if the file could not be written.
     */
    bool writeFile(const std::string &path) const;

    /** JSON-escape @p text (quotes not included). */
    static std::string escape(std::string_view text);

    /**
     * Re-arm the once-per-process warning emitted when a non-finite
     * double is written (and serialized as null).  Test hook only —
     * lets regression tests observe the warning regardless of the
     * order they run in.
     */
    static void resetNonFiniteWarning();

  private:
    enum class Scope { Object, Array };
    struct Level
    {
        Scope scope;
        size_t members = 0;
    };

    int indentWidth;
    std::string out;
    std::vector<Level> stack;
    bool keyPending = false; ///< key() emitted, value must follow
    bool started = false;

    /** Comma/indent bookkeeping before a value or key is emitted. */
    void beforeValue();
    void newline();
};

} // namespace obs
} // namespace aiecc

#endif // AIECC_OBS_JSON_HH
