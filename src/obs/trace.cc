#include "obs/trace.hh"

namespace aiecc
{
namespace obs
{

std::string_view
eventKindNameView(EventKind kind)
{
    switch (kind) {
#define AIECC_EVENT_KIND_NAME(k, n)                                       \
      case EventKind::k: return n;
      AIECC_EVENT_KINDS(AIECC_EVENT_KIND_NAME)
#undef AIECC_EVENT_KIND_NAME
    }
    return "?";
}

std::string
eventKindName(EventKind kind)
{
    return std::string(eventKindNameView(kind));
}

std::optional<EventKind>
eventKindFromName(std::string_view name)
{
    for (unsigned k = 0; k < numEventKinds; ++k) {
        const EventKind kind = static_cast<EventKind>(k);
        if (eventKindNameView(kind) == name)
            return kind;
    }
    return std::nullopt;
}

void
TraceEvent::writeJson(JsonWriter &w) const
{
    w.beginObject()
        .kv("kind", eventKindName(kind))
        .kv("cycle", cycle);
    if (!label.empty())
        w.kv("label", label);
    if (value)
        w.kv("value", value);
    if (!detail.empty())
        w.kv("detail", detail);
    if (faultId)
        w.kv("fault", faultId);
    w.endObject();
}

RingTraceSink::RingTraceSink(size_t capacity) : cap(capacity)
{
    ring.reserve(capacity);
}

void
RingTraceSink::record(const TraceEvent &event)
{
    if (ring.size() < cap)
        ring.push_back(event);
    else if (cap)
        ring[count % cap] = event;
    ++count;
}

std::vector<TraceEvent>
RingTraceSink::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(size());
    if (count <= cap) {
        out = ring;
    } else {
        // The slot the next record would overwrite is the oldest.
        const size_t head = count % cap;
        for (size_t i = 0; i < cap; ++i)
            out.push_back(ring[(head + i) % cap]);
    }
    return out;
}

std::vector<TraceEvent>
RingTraceSink::eventsOfKind(EventKind kind) const
{
    std::vector<TraceEvent> out;
    for (auto &event : events()) {
        if (event.kind == kind)
            out.push_back(std::move(event));
    }
    return out;
}

void
RingTraceSink::clear()
{
    ring.clear();
    count = 0;
}

JsonlTraceSink::JsonlTraceSink(const std::string &path)
    : file(std::fopen(path.c_str(), "w"))
{
}

JsonlTraceSink::~JsonlTraceSink()
{
    if (!file)
        return;
    if (std::fflush(file) != 0)
        ++errors;
    std::fclose(file);
}

void
JsonlTraceSink::record(const TraceEvent &event)
{
    if (!file) {
        ++drops;
        return;
    }
    JsonWriter w(0); // compact: one line per event
    event.writeJson(w);
    const std::string line = w.str();
    const size_t wrote = std::fwrite(line.data(), 1, line.size(), file);
    if (wrote != line.size() || std::fputc('\n', file) == EOF) {
        ++drops;
        ++errors;
        return;
    }
    ++lines;
}

void
JsonlTraceSink::flush()
{
    if (file && std::fflush(file) != 0)
        ++errors;
}

} // namespace obs
} // namespace aiecc
