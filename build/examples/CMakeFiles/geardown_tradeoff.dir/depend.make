# Empty dependencies file for geardown_tradeoff.
# This may be replaced when dependencies are built.
