/**
 * @file
 * Unit tests for the deterministic RNG: reproducibility, range
 * constraints, and rough distribution sanity.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace aiecc
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(4);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng.range(10, 12);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 12u);
        sawLo |= v == 10;
        sawHi |= v == 12;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, ChanceRate)
{
    Rng rng(6);
    int hits = 0;
    const int trials = 50000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, SampleDistinct)
{
    Rng rng(7);
    for (int rep = 0; rep < 50; ++rep) {
        const auto s = rng.sample(27, 2);
        ASSERT_EQ(s.size(), 2u);
        EXPECT_NE(s[0], s[1]);
        EXPECT_LT(s[0], 27u);
        EXPECT_LT(s[1], 27u);
    }
}

TEST(Rng, SampleFullPopulation)
{
    Rng rng(8);
    const auto s = rng.sample(10, 10);
    std::set<unsigned> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    EXPECT_EQ(*uniq.begin(), 0u);
    EXPECT_EQ(*uniq.rbegin(), 9u);
}

TEST(Rng, SampleCoversAllPairs)
{
    // Over many draws of 2-of-5, every unordered pair should appear.
    Rng rng(9);
    std::set<std::pair<unsigned, unsigned>> seen;
    for (int i = 0; i < 2000; ++i) {
        auto s = rng.sample(5, 2);
        std::sort(s.begin(), s.end());
        seen.emplace(s[0], s[1]);
    }
    EXPECT_EQ(seen.size(), 10u);
}

// ---- forStream: the shard-determinism primitive ----

TEST(Rng, ForStreamIsDeterministic)
{
    Rng a = Rng::forStream(0xDEADBEEF, 17);
    Rng b = Rng::forStream(0xDEADBEEF, 17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForStreamStreamsDiverge)
{
    // Adjacent stream indices — the worst case for naive seed+index
    // mixing — must yield uncorrelated sequences, and stream 0 must
    // not alias the plain single-stream generator.
    Rng plain(0xABCD);
    Rng s0 = Rng::forStream(0xABCD, 0);
    Rng s1 = Rng::forStream(0xABCD, 1);
    int samePlain = 0, sameAdjacent = 0;
    for (int i = 0; i < 64; ++i) {
        const uint64_t v0 = s0.next();
        samePlain += v0 == plain.next();
        sameAdjacent += v0 == s1.next();
    }
    EXPECT_LT(samePlain, 2);
    EXPECT_LT(sameAdjacent, 2);
}

TEST(Rng, ForStreamSameStreamDifferentSeedsDiverge)
{
    Rng a = Rng::forStream(1, 5);
    Rng b = Rng::forStream(2, 5);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

// ---- statistical quality ----

TEST(Rng, BelowIsUniformChiSquare)
{
    // 16 bins, 40000 draws => expected 2500/bin.  Chi-square with
    // df=15: P(X > 37.7) ~ 0.001, so a healthy generator virtually
    // never trips the 60 threshold while a modulo-biased or stuck
    // one blows straight through it.
    Rng rng(0x5EED);
    constexpr unsigned bins = 16;
    constexpr int draws = 40000;
    unsigned counts[bins] = {};
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(bins)];
    const double expected = static_cast<double>(draws) / bins;
    double chi2 = 0.0;
    for (unsigned b = 0; b < bins; ++b) {
        const double d = static_cast<double>(counts[b]) - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 60.0) << "chi2=" << chi2;
}

TEST(Rng, BelowUniformForNonPowerOfTwoBound)
{
    // bound 12 is where a lazy `next() % bound` shows modulo bias;
    // rejection sampling must keep every residue equally likely.
    Rng rng(0x5EED5EED);
    constexpr unsigned bound = 12;
    constexpr int draws = 48000;
    unsigned counts[bound] = {};
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(bound)];
    const double expected = static_cast<double>(draws) / bound;
    double chi2 = 0.0;
    for (unsigned b = 0; b < bound; ++b) {
        const double d = static_cast<double>(counts[b]) - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 50.0) << "chi2=" << chi2; // df=11, p~0.001 at 31.3
}

TEST(Rng, SampleAlwaysDistinctAndUnbiased)
{
    // Property: every draw of k-of-n is k distinct in-range values,
    // and across many draws each element appears with frequency k/n.
    Rng rng(0xFACADE);
    constexpr unsigned n = 20, k = 5;
    constexpr int draws = 20000;
    unsigned appearances[n] = {};
    for (int i = 0; i < draws; ++i) {
        const auto s = rng.sample(n, k);
        ASSERT_EQ(s.size(), k);
        std::set<unsigned> uniq(s.begin(), s.end());
        ASSERT_EQ(uniq.size(), k) << "draw " << i << " not distinct";
        ASSERT_LT(*uniq.rbegin(), n);
        for (unsigned v : s)
            ++appearances[v];
    }
    const double expected = static_cast<double>(draws) * k / n;
    for (unsigned v = 0; v < n; ++v) {
        EXPECT_NEAR(static_cast<double>(appearances[v]), expected,
                    expected * 0.05)
            << "element " << v;
    }
}

} // namespace
} // namespace aiecc
