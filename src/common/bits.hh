/**
 * @file
 * Small header-only bit-manipulation helpers used throughout the
 * simulator: field extraction/insertion, popcount/parity, and masks.
 */

#ifndef AIECC_COMMON_BITS_HH
#define AIECC_COMMON_BITS_HH

#include <bit>
#include <cstdint>
#include <type_traits>

namespace aiecc
{

/**
 * Build a mask with @p nbits low-order ones.
 *
 * @param nbits Number of one bits; must be <= 64.
 * @return (1 << nbits) - 1, with the nbits == 64 case handled.
 */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~0ULL : ((1ULL << nbits) - 1);
}

/**
 * Extract the bit field [first, first + nbits) from @p value.
 *
 * @param value Source word.
 * @param first Least-significant bit of the field.
 * @param nbits Width of the field.
 * @return The field, right-aligned.
 */
constexpr uint64_t
bits(uint64_t value, unsigned first, unsigned nbits)
{
    return (value >> first) & mask(nbits);
}

/** Extract a single bit of @p value. */
constexpr unsigned
bit(uint64_t value, unsigned pos)
{
    return static_cast<unsigned>((value >> pos) & 1);
}

/**
 * Insert @p field into bits [first, first + nbits) of @p value.
 *
 * @param value Destination word.
 * @param first Least-significant bit of the field.
 * @param nbits Width of the field.
 * @param field New field contents (low nbits used).
 * @return The updated word.
 */
constexpr uint64_t
insertBits(uint64_t value, unsigned first, unsigned nbits, uint64_t field)
{
    const uint64_t m = mask(nbits) << first;
    return (value & ~m) | ((field << first) & m);
}

/** Even parity of a word: 1 if the popcount is odd. */
constexpr unsigned
parity(uint64_t value)
{
    return static_cast<unsigned>(std::popcount(value) & 1);
}

/** Reverse the low @p nbits of @p value (bit 0 <-> bit nbits-1). */
constexpr uint64_t
reverseBits(uint64_t value, unsigned nbits)
{
    uint64_t out = 0;
    for (unsigned i = 0; i < nbits; ++i)
        out |= static_cast<uint64_t>((value >> i) & 1) << (nbits - 1 - i);
    return out;
}

/** Integer ceiling division for non-negative operands. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

} // namespace aiecc

#endif // AIECC_COMMON_BITS_HH
