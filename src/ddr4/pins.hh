/**
 * @file
 * The DDR4 CCCA pin interface (Figure 2 of the AIECC paper).
 *
 * 28 non-data pins issue and control four signal groups: clock (CK),
 * control (CKE, CS, ODT), command and address (which time-multiplex the
 * remaining pins), plus the dedicated command/address parity pin (PAR).
 * Pin numbering follows the paper's Figure 2: pin 27 is CK and pins
 * 22..0 form the CMD/ADD group.
 */

#ifndef AIECC_DDR4_PINS_HH
#define AIECC_DDR4_PINS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace aiecc
{

/** The 28 CCCA pins of the DDR4 command interface. */
enum class Pin : uint8_t
{
    A0 = 0, A1, A2, A3, A4, A5, A6, A7, A8, A9, ///< pins 0..9
    A10_AP = 10,    ///< A10 / auto-precharge flag
    A11 = 11,
    A13 = 12,
    A17 = 13,
    A12_BC = 14,    ///< A12 / burst-chop flag
    BA0 = 15,
    BA1 = 16,
    BG0 = 17,
    BG1 = 18,
    WE_A14 = 19,    ///< WE_n, or A14 during ACT
    CAS_A15 = 20,   ///< CAS_n, or A15 during ACT
    RAS_A16 = 21,   ///< RAS_n, or A16 during ACT
    ACT = 22,       ///< ACT_n (active low)
    PAR = 23,       ///< command/address parity
    ODT = 24,       ///< on-die termination
    CS = 25,        ///< CS_n (active low)
    CKE = 26,       ///< clock enable (active high)
    CK = 27,        ///< clock; errors modeled as all-pin noise
};

/** Total number of CCCA pins (including CK and PAR). */
inline constexpr unsigned numCccaPins = 28;

/** Number of CMD/ADD pins (Figure 2 pins 22..0). */
inline constexpr unsigned numCmdAddPins = 23;

/** Signal group of a pin, per Figure 2. */
enum class PinGroup
{
    CmdAdd,   ///< pins 22..0: time-multiplexed command/address
    Par,      ///< pin 23: CA parity
    Ctrl,     ///< pins 26..24: CKE, CS, ODT
    Clock,    ///< pin 27: CK
};

/** Map a pin to its Figure 2 group. */
PinGroup pinGroup(Pin pin);

/** Human-readable pin name ("RAS/A16", "CKE", ...). */
std::string pinName(Pin pin);

/**
 * The set of pins eligible for error injection.
 *
 * @param includePar Include the PAR pin (false models the unprotected
 *                   configuration where the pin is absent, per §V-A).
 * @return All injectable pins except CK, which is modeled as a source
 *         of all-pin errors rather than a single-pin error (§V-A).
 */
std::vector<Pin> injectablePins(bool includePar);

/**
 * One command edge's worth of CCCA pin levels.
 *
 * Bit i holds the electrical level of pin i (1 = high).  Active-low
 * signals therefore read 0 when asserted.  CK is carried as a nominal
 * constant 1 and only participates in the all-pin error model.
 */
struct PinWord
{
    uint32_t levels = 0;

    bool get(Pin pin) const
    {
        return (levels >> static_cast<unsigned>(pin)) & 1;
    }

    void
    set(Pin pin, bool value)
    {
        const uint32_t m = 1u << static_cast<unsigned>(pin);
        levels = value ? (levels | m) : (levels & ~m);
    }

    void flip(Pin pin) { levels ^= 1u << static_cast<unsigned>(pin); }

    bool operator==(const PinWord &other) const = default;

    /**
     * Even parity over the CMD/ADD group (pins 22..0), the quantity the
     * DDR4 CA-parity feature transmits on PAR.
     */
    bool cmdAddParity() const;

    /** Render as a per-pin level listing for diagnostics. */
    std::string toString() const;
};

} // namespace aiecc

#endif // AIECC_DDR4_PINS_HH
