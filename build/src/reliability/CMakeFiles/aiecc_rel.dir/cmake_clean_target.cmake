file(REMOVE_RECURSE
  "libaiecc_rel.a"
)
