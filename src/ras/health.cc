#include "ras/health.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace aiecc
{
namespace ras
{

namespace
{

/** Worse-of for shard merging and escalation comparisons. */
inline bool
worse(HealthState a, HealthState b)
{
    return static_cast<int>(a) > static_cast<int>(b);
}

inline unsigned
popcount64(uint64_t v)
{
    unsigned n = 0;
    for (; v; v &= v - 1)
        ++n;
    return n;
}

/** Parse the " chips=<hex>" suffix a data-ECC detection carries. */
uint32_t
parseChipsMask(const std::string &detail)
{
    const size_t at = detail.find(" chips=");
    if (at == std::string::npos)
        return 0;
    uint32_t mask = 0;
    for (size_t i = at + 7; i < detail.size(); ++i) {
        const char c = detail[i];
        unsigned digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            break;
        mask = mask << 4 | digit;
    }
    return mask;
}

/** The severity the raw windowed counts call for, ignoring dwell. */
HealthState
severityFor(uint64_t ces, uint64_t ues, uint64_t degradeCes,
            uint64_t failCes, uint64_t degradeUes, uint64_t failUes)
{
    if (ues >= failUes || ces >= failCes)
        return HealthState::Failing;
    if (ues >= degradeUes || ces >= degradeCes)
        return HealthState::Degraded;
    return HealthState::Healthy;
}

} // namespace

const char *
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Healthy:
        return "healthy";
      case HealthState::Degraded:
        return "degraded";
      case HealthState::Failing:
        return "failing";
    }
    return "?";
}

const char *
topologyName(Topology topology)
{
    switch (topology) {
      case Topology::None:
        return "none";
      case Topology::SingleCell:
        return "single_cell";
      case Topology::Row:
        return "row";
      case Topology::Column:
        return "column";
      case Topology::Chip:
        return "chip";
      case Topology::Link:
        return "link";
    }
    return "?";
}

const char *
actionName(ActionKind kind)
{
    switch (kind) {
      case ActionKind::RaisePatrol:
        return "raise_patrol";
      case ActionKind::RetireRow:
        return "retire_row";
      case ActionKind::QuarantineBank:
        return "quarantine_bank";
    }
    return "?";
}

HealthMonitor::HealthMonitor(const HealthConfig &config)
    : cfg(config),
      rank{obs::SlidingWindow(cfg.bucketCycles),
           obs::SlidingWindow(cfg.bucketCycles),
           obs::SlidingWindow(cfg.bucketCycles),
           obs::SlidingWindow(cfg.bucketCycles),
           obs::SlidingWindow(cfg.bucketCycles),
           obs::SlidingWindow(cfg.bucketCycles)}
{
    banks.reserve(cfg.geom.numBanks());
    for (unsigned b = 0; b < cfg.geom.numBanks(); ++b) {
        BankHealth bh;
        bh.ce = obs::SlidingWindow(cfg.bucketCycles);
        bh.ue = obs::SlidingWindow(cfg.bucketCycles);
        banks.push_back(std::move(bh));
    }
    // Reserve the fault-path containers up front so symptom bursts
    // inside profiled access scopes do not show up as per-access
    // allocations.
    pending.reserve(64);
    log.reserve(maxLog);
    retiredKeys.reserve(64);
}

// ---- Frequency sketches -------------------------------------------------

void
HealthMonitor::sketch(Slot *slots, uint32_t key, uint64_t maskBit)
{
    for (unsigned i = 0; i < numSlots; ++i) {
        if (slots[i].count && slots[i].key == key) {
            ++slots[i].count;
            slots[i].mask |= maskBit;
            return;
        }
    }
    for (unsigned i = 0; i < numSlots; ++i) {
        if (!slots[i].count) {
            slots[i].key = key;
            slots[i].count = 1;
            slots[i].mask = maskBit;
            return;
        }
    }
    // Misra-Gries decrement step: an untracked key pays one count off
    // every tracked one.  Heavy hitters survive; noise cancels out.
    for (unsigned i = 0; i < numSlots; ++i)
        --slots[i].count;
}

void
HealthMonitor::mergeSketch(Slot *into, const Slot *from)
{
    for (unsigned j = 0; j < numSlots; ++j) {
        if (!from[j].count)
            continue;
        Slot *land = nullptr;
        for (unsigned i = 0; i < numSlots && !land; ++i)
            if (into[i].count && into[i].key == from[j].key)
                land = &into[i];
        for (unsigned i = 0; i < numSlots && !land; ++i)
            if (!into[i].count) {
                land = &into[i];
                land->key = from[j].key;
                land->mask = 0;
            }
        if (land) {
            land->count += from[j].count;
            land->mask |= from[j].mask;
            continue;
        }
        // Table full of other keys: evict the lowest-index minimum if
        // the incoming hitter is heavier, else drop it (approximate
        // heavy-hitters; exactness is not required for inference).
        Slot *min = &into[0];
        for (unsigned i = 1; i < numSlots; ++i)
            if (into[i].count < min->count)
                min = &into[i];
        if (from[j].count > min->count)
            *min = from[j];
    }
}

// ---- Ingest -------------------------------------------------------------

void
HealthMonitor::record(const obs::TraceEvent &event)
{
    using obs::EventKind;
    ++seen;
    if (event.cycle > lastCycle)
        lastCycle = event.cycle;

    switch (event.kind) {
      case EventKind::Detection:
        // label = mechanism name.  DECC/eDECC are data-path symptoms
        // with address evidence; standalone data-codec engines (the
        // Table III Monte-Carlo) tag theirs "data-ecc" in the detail;
        // the rest are alert families.
        if (event.label == "DECC" || event.label == "eDECC" ||
            event.detail.find("data-ecc") != std::string::npos)
            onDataDetection(event);
        else
            onAlertDetection(event);
        break;

      case EventKind::Diagnosis:
        // label = the eDECC-diagnosed suspect CA pin.
        for (unsigned i = 0; i < numCccaPins; ++i) {
            if (pinName(static_cast<Pin>(i)) == event.label) {
                ++pinCounts[i];
                break;
            }
        }
        break;

      case EventKind::Retry:
        rank.retries.record(event.cycle);
        break;

      case EventKind::Recovery:
        if (event.detail.find("exhausted") != std::string::npos) {
            rank.exhausted.record(event.cycle);
            evalRank(event.cycle);
        }
        break;

      case EventKind::Scrub:
      case EventKind::PatrolScrub:
        rank.scrubs.record(event.cycle);
        break;

      case EventKind::Escalation:
        // The escalation ladder already decided: adopt its verdict as
        // external evidence, skipping the windowed thresholds.
        if (event.label == "quarantine" && event.value < banks.size()) {
            BankHealth &bh = banks[event.value];
            if (worse(HealthState::Failing, bh.state))
                transition(bh.state, bh.stateSince, bh.transitions,
                           HealthState::Failing, event.cycle,
                           static_cast<unsigned>(event.value), false);
        }
        break;

      case EventKind::FaultInject:
        ++injects;
        break;

      case EventKind::FaultResolve:
        ++resolves;
        break;

      default:
        // CommandIssued (the hot path), PinCorruption (injector ground
        // truth a real monitor could not see), Classification, and our
        // own RasHealth/RasAction feedback are not symptoms.
        break;
    }

    // Periodic tick: expire window buckets and let quiet components
    // step back down through the hysteresis dwell.
    if ((seen & 255) == 0) {
        evalRank(lastCycle);
        for (unsigned b = 0; b < banks.size(); ++b)
            if (banks[b].ce.lifetimeTotal() || banks[b].ue.lifetimeTotal() ||
                banks[b].state != HealthState::Healthy)
                evalBank(b, lastCycle);
    }
}

void
HealthMonitor::onDataDetection(const obs::TraceEvent &event)
{
    const bool ue = event.detail.find(" DUE") != std::string::npos;
    const MtbAddress addr = MtbAddress::unpack(
        static_cast<uint32_t>(event.value), cfg.geom);
    const unsigned bank = addr.flatBank(cfg.geom);
    if (bank >= banks.size())
        return;
    BankHealth &bh = banks[bank];

    if (ue) {
        bh.ue.record(event.cycle);
        rank.ue.record(event.cycle);
    } else {
        bh.ce.record(event.cycle);
        rank.ce.record(event.cycle);
        // Topology sketches consume the corrected-error address
        // stream only: a DUE's address may be part of the damage.
        sketch(bh.rows, addr.row, 1ull << (addr.col & 63));
        sketch(bh.cols, addr.col, 1ull << (addr.row & 63));
        sketch(bh.cells,
               (static_cast<uint32_t>(addr.row) << cfg.geom.mtbColBits()) |
                   addr.col,
               1);
        uint32_t chips = parseChipsMask(event.detail);
        for (unsigned c = 0; c < Burst::numChips && chips; ++c) {
            if (chips & (1u << c)) {
                ++chipCounts[c];
                chipMasks[c] |= 1ull << (bank & 63);
                chips &= ~(1u << c);
            }
        }
    }
    evalBank(bank, event.cycle);
    evalRank(event.cycle);
    if (!ue)
        maybeRecommendRetire(bank, event.cycle);
}

void
HealthMonitor::onAlertDetection(const obs::TraceEvent &event)
{
    rank.alerts.record(event.cycle);
    evalRank(event.cycle);
}

// ---- State machine ------------------------------------------------------

void
HealthMonitor::evalBank(unsigned bank, uint64_t cycle)
{
    BankHealth &bh = banks[bank];
    bh.ce.advanceTo(cycle);
    bh.ue.advanceTo(cycle);
    const HealthState want = severityFor(
        bh.ce.windowTotal(), bh.ue.windowTotal(), cfg.degradeCes,
        cfg.failCes, cfg.degradeUes, cfg.failUes);
    if (worse(want, bh.state)) {
        transition(bh.state, bh.stateSince, bh.transitions, want, cycle,
                   bank, false);
    } else if (worse(bh.state, want) &&
               cycle >= bh.stateSince + cfg.recoverDwell) {
        // Downgrade one step per dwell period (hysteresis).
        const HealthState next =
            static_cast<HealthState>(static_cast<int>(bh.state) - 1);
        transition(bh.state, bh.stateSince, bh.transitions, next, cycle,
                   bank, false);
    }
}

void
HealthMonitor::evalRank(uint64_t cycle)
{
    rank.ce.advanceTo(cycle);
    rank.ue.advanceTo(cycle);
    rank.alerts.advanceTo(cycle);
    rank.exhausted.advanceTo(cycle);
    // Rank-scope thresholds: 4x the per-bank data-error thresholds,
    // plus the alert-family and retry-exhaustion signals no single
    // bank owns.
    HealthState want = severityFor(
        rank.ce.windowTotal(), rank.ue.windowTotal(), 4 * cfg.degradeCes,
         4 * cfg.failCes, 4 * cfg.degradeUes, 4 * cfg.failUes);
    const HealthState alertWant = severityFor(
        rank.alerts.windowTotal(), rank.exhausted.windowTotal(),
        cfg.linkAlerts, 4 * cfg.linkAlerts, 1, 2);
    if (worse(alertWant, want))
        want = alertWant;
    if (worse(want, rank.state)) {
        transition(rank.state, rank.stateSince, rank.transitions, want,
                   cycle, 0, true);
    } else if (worse(rank.state, want) &&
               cycle >= rank.stateSince + cfg.recoverDwell) {
        const HealthState next =
            static_cast<HealthState>(static_cast<int>(rank.state) - 1);
        transition(rank.state, rank.stateSince, rank.transitions, next,
                   cycle, 0, true);
    }
}

void
HealthMonitor::transition(HealthState &state, uint64_t &since,
                          uint64_t &transitions, HealthState next,
                          uint64_t cycle, unsigned bank, bool isRank)
{
    const HealthState prev = state;
    state = next;
    since = cycle;
    ++transitions;

    char component[16];
    if (isRank)
        std::snprintf(component, sizeof(component), "rank");
    else
        std::snprintf(component, sizeof(component), "bank%u", bank);
    if (obsHook) {
        char detail[48];
        std::snprintf(detail, sizeof(detail), "%s -> %s",
                      healthStateName(prev), healthStateName(next));
        obsHook->emit(obs::EventKind::RasHealth, cycle, component,
                      static_cast<uint64_t>(next), detail);
    }

    if (!worse(next, prev))
        return; // downgrades recommend nothing
    if (next == HealthState::Degraded && !patrolRaised) {
        patrolRaised = true;
        recommend(ActionKind::RaisePatrol, 0, 0, cycle);
    }
    if (next == HealthState::Failing && !isRank)
        recommend(ActionKind::QuarantineBank, bank, 0, cycle);
}

void
HealthMonitor::maybeRecommendRetire(unsigned bank, uint64_t cycle)
{
    const TopologyCall call = bankTopology(bank);
    if (call.kind != Topology::Row || call.evidence < cfg.retireRowCes)
        return;
    const uint32_t key = static_cast<uint32_t>(bank) << 20 | call.row;
    for (uint32_t k : retiredKeys)
        if (k == key)
            return;
    retiredKeys.push_back(key);
    recommend(ActionKind::RetireRow, bank, call.row, cycle);
}

void
HealthMonitor::recommend(ActionKind kind, unsigned bank, unsigned row,
                         uint64_t cycle)
{
    const RecommendedAction action{kind, bank, row, cycle};
    ++actionCounts[static_cast<unsigned>(kind)];
    pending.push_back(action);
    if (log.size() < maxLog)
        log.push_back(action);
    else
        ++droppedLog;
    if (obsHook) {
        char detail[64];
        std::snprintf(detail, sizeof(detail),
                      "recommend %s bank=%u row=%u", actionName(kind),
                      bank, row);
        obsHook->emit(obs::EventKind::RasAction, cycle, actionName(kind),
                      static_cast<uint64_t>(bank) << 32 | row, detail);
    }
}

size_t
HealthMonitor::drainActions(std::vector<RecommendedAction> &out)
{
    const size_t n = pending.size();
    out.insert(out.end(), pending.begin(), pending.end());
    pending.clear();
    return n;
}

// ---- Queries ------------------------------------------------------------

HealthState
HealthMonitor::bankState(unsigned bank) const
{
    AIECC_ASSERT(bank < banks.size(), "ras: bank out of range");
    return banks[bank].state;
}

unsigned
HealthMonitor::degradedBanks() const
{
    unsigned n = 0;
    for (const BankHealth &bh : banks)
        if (bh.state == HealthState::Degraded)
            ++n;
    return n;
}

unsigned
HealthMonitor::failingBanks() const
{
    unsigned n = 0;
    for (const BankHealth &bh : banks)
        if (bh.state == HealthState::Failing)
            ++n;
    return n;
}

TopologyCall
HealthMonitor::bankTopology(unsigned bank) const
{
    TopologyCall call;
    if (bank >= banks.size())
        return call;
    const BankHealth &bh = banks[bank];
    const uint64_t total = bh.ce.lifetimeTotal();
    // A retired row is a settled Row call: the retirement itself
    // required a confident inference, and it must not be forgotten
    // once mitigation stops the symptom stream (post-retirement
    // corrections from other faults would otherwise dilute the
    // concentration below threshold).
    for (uint32_t key : retiredKeys) {
        if ((key >> 20) != bank)
            continue;
        call.kind = Topology::Row;
        call.bank = bank;
        call.row = key & ((1u << 20) - 1);
        call.evidence = cfg.retireRowCes;
        for (unsigned i = 0; i < numSlots; ++i)
            if (bh.rows[i].count && bh.rows[i].key == call.row)
                call.evidence = bh.rows[i].count;
        call.share = total ? double(call.evidence) / double(total) : 1.0;
        return call;
    }
    if (total < cfg.minEvidence)
        return call;
    const auto top = [](const Slot *slots) {
        const Slot *best = &slots[0];
        for (unsigned i = 1; i < numSlots; ++i)
            if (slots[i].count > best->count)
                best = &slots[i];
        return best;
    };
    call.bank = bank;

    // A single stuck cell dominates all three sketches; check the
    // most specific explanation first.
    const Slot *cell = top(bh.cells);
    if (cell->count >= cfg.concentration * total) {
        call.kind = Topology::SingleCell;
        call.row = cell->key >> cfg.geom.mtbColBits();
        call.col = cell->key & ((1u << cfg.geom.mtbColBits()) - 1);
        call.evidence = cell->count;
        call.share = double(cell->count) / double(total);
        return call;
    }
    const Slot *row = top(bh.rows);
    if (row->count >= cfg.concentration * total &&
        popcount64(row->mask) >= cfg.rowSpread) {
        call.kind = Topology::Row;
        call.row = row->key;
        call.evidence = row->count;
        call.share = double(row->count) / double(total);
        return call;
    }
    const Slot *col = top(bh.cols);
    if (col->count >= cfg.concentration * total &&
        popcount64(col->mask) >= cfg.colSpread) {
        call.kind = Topology::Column;
        call.col = col->key;
        call.evidence = col->count;
        call.share = double(col->count) / double(total);
        return call;
    }
    return call;
}

TopologyCall
HealthMonitor::chipTopology() const
{
    TopologyCall best;
    for (const TopologyCall &call : chipTopologies())
        if (call.evidence > best.evidence)
            best = call;
    return best;
}

std::vector<TopologyCall>
HealthMonitor::chipTopologies() const
{
    std::vector<TopologyCall> calls;
    uint64_t total = 0;
    for (unsigned c = 0; c < Burst::numChips; ++c)
        total += chipCounts[c];
    if (total < cfg.minEvidence)
        return calls;
    // Dominance is judged against the *median* chip count: a mean
    // would be dragged up by other simultaneously-dying chips (and by
    // weak-row corrections, which land on data chips uniformly),
    // masking real multi-chip faults.
    uint64_t sorted[Burst::numChips];
    std::copy(chipCounts, chipCounts + Burst::numChips, sorted);
    std::sort(sorted, sorted + Burst::numChips);
    const double median =
        static_cast<double>(sorted[Burst::numChips / 2]);
    for (unsigned c = 0; c < Burst::numChips; ++c) {
        if (chipCounts[c] < cfg.minEvidence)
            continue;
        // A chip fault sprays corrections across banks; a stuck cell
        // or a weak row concentrates on one chip too, but never
        // across banks.
        if (popcount64(chipMasks[c]) < 4)
            continue;
        if (double(chipCounts[c]) <=
            cfg.chipDominance * std::max(median, 0.5))
            continue;
        TopologyCall call;
        call.kind = Topology::Chip;
        call.chip = c;
        call.evidence = chipCounts[c];
        call.share = double(chipCounts[c]) / double(total);
        calls.push_back(call);
    }
    return calls;
}

TopologyCall
HealthMonitor::linkTopology() const
{
    TopologyCall call;
    const uint64_t total = rank.alerts.lifetimeTotal();
    if (total < cfg.linkAlerts)
        return call;
    call.kind = Topology::Link;
    call.evidence = total;
    call.share = 1.0;
    uint64_t best = 0;
    for (unsigned i = 0; i < numCccaPins; ++i) {
        if (pinCounts[i] > best) {
            best = pinCounts[i];
            call.pin = static_cast<int>(i);
        }
    }
    return call;
}

std::vector<TopologyCall>
HealthMonitor::topologies() const
{
    std::vector<TopologyCall> calls;
    for (unsigned b = 0; b < banks.size(); ++b) {
        const TopologyCall call = bankTopology(b);
        if (call.kind != Topology::None)
            calls.push_back(call);
    }
    for (const TopologyCall &chip : chipTopologies())
        calls.push_back(chip);
    const TopologyCall link = linkTopology();
    if (link.kind != Topology::None)
        calls.push_back(link);
    return calls;
}

// ---- Registry contract --------------------------------------------------

void
HealthMonitor::merge(const HealthMonitor &other)
{
    AIECC_ASSERT(banks.size() == other.banks.size(),
                 "ras merge: bank count mismatch");
    const auto mergeState = [](HealthState &state, uint64_t &since,
                               const HealthState oState,
                               const uint64_t oSince) {
        if (worse(oState, state)) {
            state = oState;
            since = oSince;
        } else if (oState == state && oSince < since) {
            since = oSince;
        }
    };

    rank.ce.merge(other.rank.ce);
    rank.ue.merge(other.rank.ue);
    rank.alerts.merge(other.rank.alerts);
    rank.retries.merge(other.rank.retries);
    rank.scrubs.merge(other.rank.scrubs);
    rank.exhausted.merge(other.rank.exhausted);
    mergeState(rank.state, rank.stateSince, other.rank.state,
               other.rank.stateSince);
    rank.transitions += other.rank.transitions;

    for (size_t b = 0; b < banks.size(); ++b) {
        BankHealth &into = banks[b];
        const BankHealth &from = other.banks[b];
        into.ce.merge(from.ce);
        into.ue.merge(from.ue);
        mergeState(into.state, into.stateSince, from.state,
                   from.stateSince);
        into.transitions += from.transitions;
        mergeSketch(into.rows, from.rows);
        mergeSketch(into.cols, from.cols);
        mergeSketch(into.cells, from.cells);
    }

    for (unsigned c = 0; c < Burst::numChips; ++c) {
        chipCounts[c] += other.chipCounts[c];
        chipMasks[c] |= other.chipMasks[c];
    }
    for (unsigned i = 0; i < numCccaPins; ++i)
        pinCounts[i] += other.pinCounts[i];

    seen += other.seen;
    injects += other.injects;
    resolves += other.resolves;
    if (other.lastCycle > lastCycle)
        lastCycle = other.lastCycle;
    for (unsigned i = 0; i < 3; ++i)
        actionCounts[i] += other.actionCounts[i];
    droppedLog += other.droppedLog;
    patrolRaised = patrolRaised || other.patrolRaised;

    pending.insert(pending.end(), other.pending.begin(),
                   other.pending.end());
    for (const RecommendedAction &action : other.log) {
        if (log.size() < maxLog)
            log.push_back(action);
        else
            ++droppedLog;
    }
    for (uint32_t key : other.retiredKeys)
        if (std::find(retiredKeys.begin(), retiredKeys.end(), key) ==
            retiredKeys.end())
            retiredKeys.push_back(key);
}

std::string
HealthMonitor::serializeState() const
{
    std::ostringstream out;
    out << "rasv1 " << banks.size() << ' ' << cfg.bucketCycles << '\n';
    out << "ctr " << seen << ' ' << injects << ' ' << resolves << ' '
        << droppedLog << ' ' << lastCycle << ' ' << (patrolRaised ? 1 : 0)
        << ' ' << actionCounts[0] << ' ' << actionCounts[1] << ' '
        << actionCounts[2] << '\n';
    out << "rank " << static_cast<int>(rank.state) << ' '
        << rank.stateSince << ' ' << rank.transitions << '\n';
    out << rank.ce.serializeState() << '\n'
        << rank.ue.serializeState() << '\n'
        << rank.alerts.serializeState() << '\n'
        << rank.retries.serializeState() << '\n'
        << rank.scrubs.serializeState() << '\n'
        << rank.exhausted.serializeState() << '\n';
    out << "chips";
    for (unsigned c = 0; c < Burst::numChips; ++c)
        out << ' ' << chipCounts[c] << ' ' << chipMasks[c];
    out << '\n';
    out << "pins";
    for (unsigned i = 0; i < numCccaPins; ++i)
        out << ' ' << pinCounts[i];
    out << '\n';
    for (size_t b = 0; b < banks.size(); ++b) {
        const BankHealth &bh = banks[b];
        out << "bank " << b << ' ' << static_cast<int>(bh.state) << ' '
            << bh.stateSince << ' ' << bh.transitions << '\n';
        out << bh.ce.serializeState() << '\n'
            << bh.ue.serializeState() << '\n';
        const auto slots = [&out](const Slot *table) {
            for (unsigned i = 0; i < numSlots; ++i)
                out << ' ' << table[i].key << ' ' << table[i].count << ' '
                    << table[i].mask;
            out << '\n';
        };
        out << "rows";
        slots(bh.rows);
        out << "cols";
        slots(bh.cols);
        out << "cells";
        slots(bh.cells);
    }
    const auto actions = [&out](const std::vector<RecommendedAction> &v) {
        out << ' ' << v.size();
        for (const RecommendedAction &a : v)
            out << ' ' << static_cast<int>(a.kind) << ' ' << a.bank << ' '
                << a.row << ' ' << a.cycle;
        out << '\n';
    };
    out << "log";
    actions(log);
    out << "pending";
    actions(pending);
    out << "retired " << retiredKeys.size();
    for (uint32_t key : retiredKeys)
        out << ' ' << key;
    out << '\n';
    return out.str();
}

void
HealthMonitor::deserializeState(const std::string &text)
{
    std::istringstream in(text);
    std::string word;
    const auto expect = [&](const char *tag) {
        in >> word;
        AIECC_ASSERT(in && word == tag,
                     "ras state: malformed checkpoint (missing tag)");
    };
    const auto window = [&](obs::SlidingWindow &w) {
        // A serialized window is a fixed 21-token record.
        std::string acc;
        for (unsigned i = 0; i < 21; ++i) {
            in >> word;
            AIECC_ASSERT(in, "ras state: truncated window record");
            acc += word;
            acc += ' ';
        }
        w.deserializeState(acc);
    };

    expect("rasv1");
    size_t numBanks = 0;
    uint64_t bucketCycles = 0;
    in >> numBanks >> bucketCycles;
    AIECC_ASSERT(in && numBanks == banks.size() &&
                     bucketCycles == cfg.bucketCycles,
                 "ras state: geometry/config mismatch");

    expect("ctr");
    int raised = 0;
    in >> seen >> injects >> resolves >> droppedLog >> lastCycle >>
        raised >> actionCounts[0] >> actionCounts[1] >> actionCounts[2];
    AIECC_ASSERT(in, "ras state: malformed counters");
    patrolRaised = raised != 0;

    expect("rank");
    int state = 0;
    in >> state >> rank.stateSince >> rank.transitions;
    AIECC_ASSERT(in && state >= 0 && state <= 2,
                 "ras state: malformed rank state");
    rank.state = static_cast<HealthState>(state);
    window(rank.ce);
    window(rank.ue);
    window(rank.alerts);
    window(rank.retries);
    window(rank.scrubs);
    window(rank.exhausted);

    expect("chips");
    for (unsigned c = 0; c < Burst::numChips; ++c)
        in >> chipCounts[c] >> chipMasks[c];
    expect("pins");
    for (unsigned i = 0; i < numCccaPins; ++i)
        in >> pinCounts[i];
    AIECC_ASSERT(in, "ras state: malformed chip/pin counters");

    for (size_t b = 0; b < banks.size(); ++b) {
        expect("bank");
        size_t idx = 0;
        in >> idx >> state;
        BankHealth &bh = banks[b];
        in >> bh.stateSince >> bh.transitions;
        AIECC_ASSERT(in && idx == b && state >= 0 && state <= 2,
                     "ras state: malformed bank record");
        bh.state = static_cast<HealthState>(state);
        window(bh.ce);
        window(bh.ue);
        const auto slots = [&](const char *tag, Slot *table) {
            expect(tag);
            for (unsigned i = 0; i < numSlots; ++i)
                in >> table[i].key >> table[i].count >> table[i].mask;
            AIECC_ASSERT(in, "ras state: malformed sketch");
        };
        slots("rows", bh.rows);
        slots("cols", bh.cols);
        slots("cells", bh.cells);
    }

    const auto actions = [&](const char *tag,
                             std::vector<RecommendedAction> &v) {
        expect(tag);
        size_t n = 0;
        in >> n;
        AIECC_ASSERT(in && n <= 1000000, "ras state: malformed actions");
        v.clear();
        v.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            int kind = 0;
            RecommendedAction a;
            in >> kind >> a.bank >> a.row >> a.cycle;
            AIECC_ASSERT(in && kind >= 0 && kind <= 2,
                         "ras state: malformed action");
            a.kind = static_cast<ActionKind>(kind);
            v.push_back(a);
        }
    };
    actions("log", log);
    actions("pending", pending);

    expect("retired");
    size_t n = 0;
    in >> n;
    AIECC_ASSERT(in && n <= 1000000, "ras state: malformed retired set");
    retiredKeys.clear();
    retiredKeys.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        uint32_t key = 0;
        in >> key;
        AIECC_ASSERT(in, "ras state: malformed retired key");
        retiredKeys.push_back(key);
    }
}

// ---- Reporting ----------------------------------------------------------

void
HealthMonitor::writeTopologyJson(obs::JsonWriter &w, const char *component,
                                 const TopologyCall &call) const
{
    w.beginObject();
    w.kv("component", component);
    w.kv("kind", topologyName(call.kind));
    switch (call.kind) {
      case Topology::SingleCell:
        w.kv("bank", call.bank).kv("row", call.row).kv("col", call.col);
        break;
      case Topology::Row:
        w.kv("bank", call.bank).kv("row", call.row);
        break;
      case Topology::Column:
        w.kv("bank", call.bank).kv("col", call.col);
        break;
      case Topology::Chip:
        w.kv("chip", call.chip);
        break;
      case Topology::Link:
        if (call.pin >= 0)
            w.kv("pin", pinName(static_cast<Pin>(call.pin)));
        break;
      case Topology::None:
        break;
    }
    w.kv("evidence", call.evidence);
    w.kv("share", call.share);
    w.endObject();
}

void
HealthMonitor::writeJsonMembers(obs::JsonWriter &w) const
{
    w.kv("window_cycles",
         cfg.bucketCycles * obs::SlidingWindow::numBuckets);
    w.kv("events_seen", seen);
    w.kv("faults_injected", injects);
    w.kv("faults_resolved", resolves);

    w.key("rank").beginObject();
    w.kv("state", healthStateName(rank.state));
    w.kv("transitions", rank.transitions);
    rank.ce.writeJsonMembers(w, "ce");
    rank.ue.writeJsonMembers(w, "ue");
    rank.alerts.writeJsonMembers(w, "alerts");
    rank.retries.writeJsonMembers(w, "retries");
    rank.scrubs.writeJsonMembers(w, "scrubs");
    rank.exhausted.writeJsonMembers(w, "exhausted");
    w.endObject();

    w.key("banks").beginArray();
    for (unsigned b = 0; b < banks.size(); ++b) {
        const BankHealth &bh = banks[b];
        if (!bh.ce.lifetimeTotal() && !bh.ue.lifetimeTotal() &&
            !bh.transitions)
            continue;
        w.beginObject();
        w.kv("bank", b);
        w.kv("state", healthStateName(bh.state));
        w.kv("transitions", bh.transitions);
        bh.ce.writeJsonMembers(w, "ce");
        bh.ue.writeJsonMembers(w, "ue");
        w.endObject();
    }
    w.endArray();

    w.key("chips").beginArray();
    for (unsigned c = 0; c < Burst::numChips; ++c)
        w.value(chipCounts[c]);
    w.endArray();

    w.key("pins").beginObject();
    for (unsigned i = 0; i < numCccaPins; ++i)
        if (pinCounts[i])
            w.kv(pinName(static_cast<Pin>(i)), pinCounts[i]);
    w.endObject();

    w.key("topologies").beginArray();
    char component[16];
    for (unsigned b = 0; b < banks.size(); ++b) {
        const TopologyCall call = bankTopology(b);
        if (call.kind == Topology::None)
            continue;
        std::snprintf(component, sizeof(component), "bank%u", b);
        writeTopologyJson(w, component, call);
    }
    for (const TopologyCall &chip : chipTopologies())
        writeTopologyJson(w, "chip", chip);
    const TopologyCall link = linkTopology();
    if (link.kind != Topology::None)
        writeTopologyJson(w, "link", link);
    w.endArray();

    w.key("actions").beginObject();
    w.kv("raise_patrol", actionCounts[0]);
    w.kv("retire_row", actionCounts[1]);
    w.kv("quarantine_bank", actionCounts[2]);
    w.kv("pending", static_cast<uint64_t>(pending.size()));
    w.kv("dropped_log", droppedLog);
    w.key("log").beginArray();
    for (const RecommendedAction &a : log) {
        w.beginObject();
        w.kv("action", actionName(a.kind));
        w.kv("bank", a.bank);
        w.kv("row", a.row);
        w.kv("cycle", a.cycle);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
HealthMonitor::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    writeJsonMembers(w);
    w.endObject();
}

void
HealthMonitor::writeHeartbeat(obs::JsonWriter &w) const
{
    w.kv("ras_state", healthStateName(rank.state));
    w.kv("ras_ce_window", rank.ce.windowTotal());
    w.kv("ras_ue_window", rank.ue.windowTotal());
    w.kv("ras_alerts_window", rank.alerts.windowTotal());
    w.kv("ras_degraded_banks", degradedBanks());
    w.kv("ras_failing_banks", failingBanks());
    w.kv("ras_actions",
         actionCounts[0] + actionCounts[1] + actionCounts[2]);
}

} // namespace ras
} // namespace aiecc
