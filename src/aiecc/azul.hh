/**
 * @file
 * The Normoyle/Azul address-checksum baseline (US 7,203,890) adapted
 * to QPC, as evaluated in Table III of the AIECC paper.
 *
 * A 4-bit CRC of the MTB address is triplicated and XOR-merged into
 * the first beat of three chips after data-ECC encoding (the
 * triplication spreads the residue across >4 pin symbols so that the
 * quadruple-pin-correcting decoder cannot miscorrect it away — see the
 * paper's footnote in Section V-B).  On a read, the controller XORs
 * the read-address CRC back out: a wrong address whose CRC differs
 * leaves a detectable residue, but a wrong address whose 4-bit CRC
 * aliases (1/16 of random addresses, the 6.3% SDC cells of Table III)
 * is invisible.
 */

#ifndef AIECC_AIECC_AZUL_HH
#define AIECC_AIECC_AZUL_HH

#include "ecc/qpc.hh"

namespace aiecc
{

/** QPC + Azul 4-bit address-CRC merge (Table III: QPC+Azul). */
class AzulQpc : public DataEcc
{
  public:
    AzulQpc() = default;

    std::string name() const override { return "QPC+Azul"; }
    Burst encode(const BitVec &data, uint32_t mtbAddr) const override;
    EccResult decode(const Burst &burst, uint32_t mtbAddr) const override;
    bool protectsAddress() const override { return true; }
    bool preciseDiagnosis() const override { return false; }

    /** Chips whose first beat carries a CRC replica. */
    static constexpr unsigned replicaChips[3] = {0, 6, 12};

    /** XOR the triplicated address CRC into/out of a burst. */
    static void applyCrc(Burst &burst, uint32_t mtbAddr);

  private:
    QpcEcc inner;
};

} // namespace aiecc

#endif // AIECC_AIECC_AZUL_HH
