/**
 * @file
 * Table III reproduction: data + address reliability of QPC,
 * QPC+Azul, QPC+eDECC-t and QPC+eDECC-c under Monte-Carlo injection
 * of data errors (none / 1 bit / 1 chip / 1 rank) crossed with
 * address errors (none / 1 bit / 32 bits).
 *
 * Each cell prints the paper's notation: an SDC percentage when
 * silent corruption is possible, otherwise the dominant corrected /
 * detected outcome (CE-D, CE-R(+), CE-RD(+), DUE).
 */

#include <chrono>
#include <cstdio>

#include "aiecc/cost_model.hh"
#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "inject/montecarlo.hh"
#include "obs/coverage.hh"

using namespace aiecc;

namespace
{

std::string
cellText(const MonteCarloCell &cell)
{
    const double sdc = cell.sdcFrac();
    if (sdc >= 0.5)
        return TextTable::pct(sdc) + " SDC";
    std::string label = dataOutcomeName(cell.dominant());
    if (cell.count(DataOutcome::Sdc) > 0) {
        label = TextTable::pct(sdc) + " SDC / " + label;
    } else if (cell.trials) {
        // Report the Monte-Carlo resolution floor, paper-style.
        label += " (<" +
                 TextTable::num(100.0 / static_cast<double>(cell.trials),
                                2) +
                 "% SDC)";
    }
    return label;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parse(argc, argv);
    const uint64_t trials =
        opt.trials ? opt.trials : (opt.quick ? 2000u : 20000u);
    const unsigned jobs = resolveJobs(opt.jobs);
    ShardPlan plan;
    plan.jobs = opt.jobs;

    bench::banner("Table III: data and address reliability comparison");
    std::printf("%llu Monte-Carlo trials per cell (paper: 4e9; scale "
                "with --trials N), %u worker thread(s)\n\n",
                static_cast<unsigned long long>(trials), jobs);

    const EccScheme schemes[] = {EccScheme::Qpc, EccScheme::AzulQpc,
                                 EccScheme::EDeccTransformQpc,
                                 EccScheme::EDeccQpc};
    const DataErrorModel dataModels[] = {
        DataErrorModel::None, DataErrorModel::Bit1, DataErrorModel::Chip1,
        DataErrorModel::Rank1};
    const AddrErrorModel addrModels[] = {
        AddrErrorModel::None, AddrErrorModel::Bit1,
        AddrErrorModel::Bits32};

    const char *schemeNames[] = {"QPC", "QPC+Azul", "QPC+eDECC-t",
                                 "QPC+eDECC-c"};

    struct CellResult
    {
        DataErrorModel dm;
        AddrErrorModel am;
        MonteCarloCell bySch[4];
    };
    std::vector<CellResult> results;

    // One ledger follows every Monte-Carlo fault: IDs are salted by
    // scheme and streamed by (data, addr) cell, so all 4 schemes and
    // all 11 injecting cells coexist without collisions.
    obs::LineageLedger lineage;

    // One cost accountant per scheme, accumulated across every cell:
    // each trial bills its write, demand read, codec work, and any
    // retry re-reads (recovery-billed) to the scheme under test.
    obs::Observer costObs[4];
    std::vector<obs::CostAccountant> schemeCost;
    for (unsigned si = 0; si < 4; ++si) {
        Mechanisms mech;
        mech.ecc = schemes[si];
        schemeCost.emplace_back(makeCostModel(mech));
    }
    for (unsigned si = 0; si < 4; ++si)
        costObs[si].setCost(&schemeCost[si]);

    const auto begin = std::chrono::steady_clock::now();
    TextTable t;
    t.header({"data err", "addr err", "QPC", "QPC+Azul", "QPC+eDECC-t",
              "QPC+eDECC-c"});
    for (auto dm : dataModels) {
        bool firstRow = true;
        for (auto am : addrModels) {
            if (dm == DataErrorModel::None && am == AddrErrorModel::None)
                continue;
            std::vector<std::string> row{
                firstRow ? dataErrorName(dm) : "", addrErrorName(am)};
            CellResult res{dm, am, {}};
            for (unsigned si = 0; si < 4; ++si) {
                DataMonteCarlo mc(schemes[si]);
                mc.setLineageLedger(&lineage);
                mc.setObserver(&costObs[si]);
                res.bySch[si] = mc.runCellSharded(dm, am, trials, plan);
                row.push_back(cellText(res.bySch[si]));
            }
            t.row(row);
            results.push_back(std::move(res));
            firstRow = false;
        }
        t.separator();
    }
    const uint64_t elapsedNs =
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count());
    std::printf("%s\n", t.str().c_str());
    std::printf("campaign wall clock: %.2f s at --jobs %u\n\n",
                static_cast<double>(elapsedNs) * 1e-9, jobs);

    // Conservation audit over every trial that injected anything
    // (the ledger skips nothing-injected trials by construction).
    const obs::CoverageMatrix coverage =
        obs::CoverageMatrix::fromLedger(lineage);
    const obs::CoverageMatrix::Audit audit = coverage.audit();
    std::printf("lineage: %llu faults injected, %llu unaccounted, "
                "ledger digest %016llx\n\n",
                static_cast<unsigned long long>(audit.injected),
                static_cast<unsigned long long>(audit.unaccounted),
                static_cast<unsigned long long>(lineage.digest()));

    // Reliability x cost: each scheme's aggregate SDC-free fraction
    // over the injecting cells against what its protection cost.
    bench::CostEntries costs;
    std::vector<bench::ParetoPoint> pareto;
    for (unsigned si = 0; si < 4; ++si) {
        MonteCarloCell agg;
        for (const auto &res : results)
            agg.merge(res.bySch[si]);
        costs.emplace_back(schemeNames[si], schemeCost[si]);
        pareto.push_back(bench::ParetoPoint::of(
            schemeNames[si], "sdc_free_frac", 1.0 - agg.sdcFrac(),
            schemeCost[si]));
    }
    bench::printParetoTable(pareto);

    bench::writeJsonArtifact(
        opt, "table3_data", costs, pareto, [&](obs::JsonWriter &w) {
            w.beginObject();
            w.kv("trials_per_cell", trials);
            w.kv("jobs_resolved", jobs);
            w.kv("elapsed_ns", elapsedNs);
            w.key("cells");
            w.beginArray();
            for (const auto &res : results) {
                w.beginObject();
                w.kv("data_error", dataErrorName(res.dm));
                w.kv("addr_error", addrErrorName(res.am));
                for (unsigned si = 0; si < 4; ++si) {
                    w.key(schemeNames[si]);
                    res.bySch[si].writeJson(w);
                }
                w.endObject();
            }
            w.endArray();
            w.key("coverage");
            coverage.writeJson(w);
            w.key("lineage");
            lineage.writeJson(w);
            w.endObject();
        });

    std::printf(
        "Paper cross-checks (Table III):\n"
        "  * QPC alone: 100%% SDC for every address-error cell;\n"
        "  * QPC+Azul: ~6.3%% SDC whenever the wrong address aliases "
        "the 4-bit CRC;\n"
        "  * eDECC-t detects address errors (CE-R) but cannot diagnose "
        "them;\n"
        "  * eDECC-c corrects and precisely diagnoses (CE-R+/CE-RD+); "
        "chipkill\n    (1-chip correction) is preserved by all "
        "variants.\n"
        "Note: residual ~2e-4 SDC in beyond-capability cells is the "
        "textbook\nbounded-distance RS miscorrection floor (see "
        "EXPERIMENTS.md).\n");

    if (!audit.ok) {
        for (const std::string &v : audit.violations)
            std::fprintf(stderr, "coverage audit: %s\n", v.c_str());
        std::fprintf(stderr,
                     "coverage audit FAILED: %llu of %llu injected "
                     "faults unaccounted\n",
                     static_cast<unsigned long long>(audit.unaccounted),
                     static_cast<unsigned long long>(audit.injected));
        return 1;
    }
    return 0;
}
