#include "rs/rs_code.hh"

#include <algorithm>

#include "common/logging.hh"

namespace aiecc
{

RsCodec::RsCodec(unsigned n, unsigned k, unsigned fcr)
    : nLen(n), kLen(k), fcr(fcr),
      generator(Gf256Poly::rsGenerator(n - k, fcr))
{
    AIECC_ASSERT(k < n && n <= Gf256::groupOrder,
                 "invalid RS parameters n=" << n << " k=" << k);
}

std::vector<GfElem>
RsCodec::encode(const std::vector<GfElem> &message) const
{
    std::vector<GfElem> cw = message;
    const std::vector<GfElem> par = parity(message);
    cw.insert(cw.end(), par.begin(), par.end());
    return cw;
}

std::vector<GfElem>
RsCodec::parity(const std::vector<GfElem> &message) const
{
    AIECC_ASSERT(message.size() == kLen,
                 "RS encode: message size " << message.size()
                                            << " != k " << kLen);
    // Systematic encoding: parity = -(m(x) * x^(n-k)) mod g(x).
    // Our position convention places message[0] at the highest degree,
    // so build the polynomial low-degree-first by reversing.
    std::vector<GfElem> poly(nLen, 0);
    for (unsigned i = 0; i < kLen; ++i)
        poly[nLen - 1 - i] = message[i];
    const Gf256Poly rem = Gf256Poly(std::move(poly)).mod(generator);

    // parity[j] occupies codeword position k + j, i.e. degree n-1-(k+j).
    std::vector<GfElem> par(nroots(), 0);
    for (unsigned j = 0; j < nroots(); ++j)
        par[j] = rem[nroots() - 1 - j];
    return par;
}

std::vector<GfElem>
RsCodec::syndromes(const std::vector<GfElem> &received) const
{
    std::vector<GfElem> synd(nroots(), 0);
    for (unsigned j = 0; j < nroots(); ++j) {
        GfElem acc = 0;
        const GfElem x = Gf256::alphaPow(static_cast<int>(fcr + j));
        // Horner over coefficients: degree n-1 (position 0) first.
        for (unsigned i = 0; i < nLen; ++i)
            acc = Gf256::add(Gf256::mul(acc, x), received[i]);
        synd[j] = acc;
    }
    return synd;
}

bool
RsCodec::isCodeword(const std::vector<GfElem> &word) const
{
    AIECC_ASSERT(word.size() == nLen, "RS isCodeword: wrong length");
    const auto synd = syndromes(word);
    return std::all_of(synd.begin(), synd.end(),
                       [](GfElem s) { return s == 0; });
}

RsCodec::Result
RsCodec::decode(const std::vector<GfElem> &received,
                const std::vector<unsigned> &erasures) const
{
    AIECC_ASSERT(received.size() == nLen, "RS decode: wrong length");
    Result res;
    res.codeword = received;

    const unsigned nr = nroots();
    const auto synd = syndromes(received);
    const bool clean = std::all_of(synd.begin(), synd.end(),
                                   [](GfElem s) { return s == 0; });
    if (clean) {
        res.status = Status::Ok;
        return res;
    }

    if (erasures.size() > nr) {
        res.status = Status::Uncorrectable;
        return res;
    }

    // Erasure locator Gamma(x) = prod (1 + X_l x), X_l = alpha^(n-1-pos).
    std::vector<GfElem> lambda(nr + 1, 0);
    lambda[0] = 1;
    for (unsigned pos : erasures) {
        AIECC_ASSERT(pos < nLen, "RS decode: erasure out of range");
        const GfElem xl = Gf256::alphaPow(static_cast<int>(nLen - 1 - pos));
        for (unsigned i = nr; i >= 1; --i) {
            lambda[i] = Gf256::add(lambda[i],
                                   Gf256::mul(lambda[i - 1], xl));
        }
    }

    // Errors-and-erasures Berlekamp-Massey (libfec-style formulation).
    std::vector<GfElem> b = lambda;
    std::vector<GfElem> t(nr + 1, 0);
    unsigned el = static_cast<unsigned>(erasures.size());
    for (unsigned r = static_cast<unsigned>(erasures.size()) + 1;
         r <= nr; ++r) {
        GfElem discr = 0;
        for (unsigned i = 0; i < r; ++i) {
            if (i <= nr)
                discr = Gf256::add(discr,
                                   Gf256::mul(lambda[i], synd[r - i - 1]));
        }
        if (discr == 0) {
            // b = x * b
            for (unsigned i = nr; i >= 1; --i)
                b[i] = b[i - 1];
            b[0] = 0;
        } else {
            t[0] = lambda[0];
            for (unsigned i = 0; i < nr; ++i)
                t[i + 1] = Gf256::add(lambda[i + 1],
                                      Gf256::mul(discr, b[i]));
            if (2 * el <= r + erasures.size() - 1) {
                el = static_cast<unsigned>(r + erasures.size()) - el;
                const GfElem dinv = Gf256::inv(discr);
                for (unsigned i = 0; i <= nr; ++i)
                    b[i] = Gf256::mul(lambda[i], dinv);
            } else {
                for (unsigned i = nr; i >= 1; --i)
                    b[i] = b[i - 1];
                b[0] = 0;
            }
            lambda = t;
        }
    }

    // Degree of Lambda.
    int degLambda = -1;
    for (int i = static_cast<int>(nr); i >= 0; --i) {
        if (lambda[static_cast<unsigned>(i)] != 0) {
            degLambda = i;
            break;
        }
    }
    if (degLambda <= 0) {
        // Nonzero syndromes but no locatable error.
        res.status = Status::Uncorrectable;
        return res;
    }

    // Chien search over the n valid positions of the shortened code.
    std::vector<unsigned> positions;  // codeword indices
    std::vector<GfElem> roots;        // X^-1 values (the located roots)
    for (unsigned pos = 0; pos < nLen; ++pos) {
        // Candidate locator X = alpha^(n-1-pos); test Lambda(X^-1) == 0.
        const GfElem xinv =
            Gf256::alphaPow(-static_cast<int>(nLen - 1 - pos));
        if (Gf256Poly(lambda).eval(xinv) == 0) {
            positions.push_back(pos);
            roots.push_back(xinv);
        }
    }
    if (static_cast<int>(positions.size()) != degLambda) {
        // Lambda has roots outside the shortened support or repeated
        // roots: a decoding failure.
        res.status = Status::Uncorrectable;
        return res;
    }

    // Omega(x) = S(x) * Lambda(x) mod x^nroots.
    std::vector<GfElem> omega(nr, 0);
    for (unsigned i = 0; i < nr; ++i) {
        GfElem acc = 0;
        for (unsigned j = 0; j <= i && j <= static_cast<unsigned>(degLambda);
             ++j)
            acc = Gf256::add(acc, Gf256::mul(lambda[j], synd[i - j]));
        omega[i] = acc;
    }
    const Gf256Poly omegaPoly{std::vector<GfElem>(omega)};
    const Gf256Poly lambdaDeriv = Gf256Poly(lambda).derivative();

    // Forney: e = X^(1-fcr) * Omega(X^-1) / Lambda'(X^-1).
    for (size_t idx = 0; idx < positions.size(); ++idx) {
        const GfElem xinv = roots[idx];
        const GfElem den = lambdaDeriv.eval(xinv);
        if (den == 0) {
            res.status = Status::Uncorrectable;
            res.codeword = received;
            res.positions.clear();
            return res;
        }
        GfElem num = omegaPoly.eval(xinv);
        if (fcr != 1) {
            // Multiply by X^(1 - fcr) = (X^-1)^(fcr - 1).
            num = Gf256::mul(num,
                             Gf256::pow(xinv, fcr - 1));
        }
        const GfElem magnitude = Gf256::div(num, den);
        res.codeword[positions[idx]] =
            Gf256::add(res.codeword[positions[idx]], magnitude);
        if (magnitude != 0)
            res.positions.push_back(positions[idx]);
    }

    // Sanity: the corrected word must be a codeword.  When the error
    // pattern exceeds the design distance the BM/Chien pipeline can
    // produce an inconsistent "correction"; screen it out.
    if (!isCodeword(res.codeword)) {
        res.status = Status::Uncorrectable;
        res.codeword = received;
        res.positions.clear();
        return res;
    }

    res.status = Status::Corrected;
    return res;
}

} // namespace aiecc
