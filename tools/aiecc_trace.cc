/**
 * @file
 * `aiecc-trace` — offline analysis of recorded JSONL event traces.
 *
 * Every simulation surface that attaches a JsonlTraceSink (campaign
 * drivers, bench_e2e_throughput --trace, examples) writes the same
 * flat one-object-per-line schema; this CLI consumes those files:
 *
 *   aiecc-trace summary FILE...            per-kind counts, rates and
 *                                          inter-event gap statistics
 *   aiecc-trace filter [PRED...] FILE...   re-emit matching events as
 *                                          JSONL on stdout
 *   aiecc-trace export --chrome [-o OUT] FILE...
 *                                          Chrome trace-event JSON
 *                                          (chrome://tracing, Perfetto)
 *                                          with recovery episodes as
 *                                          duration spans
 *   aiecc-trace lineage [--chrome] [-o OUT] FILE...
 *                                          per-fault inject→observe*→
 *                                          resolve timelines, orphan /
 *                                          unresolved diagnostics, and
 *                                          (--chrome) lineage spans
 *
 * Filter predicates: --kind NAME, --label TEXT, --cycle-min N,
 * --cycle-max N.  Multiple input files are concatenated in argument
 * order.  Exit status: 0 success, 1 file/IO error, 2 usage error.
 * With --strict, malformed lines, a truncated final record, and
 * lineage integrity violations are hard errors (exit 1) instead of
 * warnings.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/trace.hh"
#include "obs/trace_reader.hh"

namespace
{

using namespace aiecc;

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: aiecc-trace <command> [options] FILE...\n"
        "\n"
        "commands:\n"
        "  summary   per-kind event counts, rates per kilocycle, and\n"
        "            inter-event gap statistics\n"
        "  filter    print events matching every predicate as JSONL\n"
        "  export    convert to another format (requires --chrome)\n"
        "  lineage   per-fault inject/observe/resolve timelines and\n"
        "            integrity diagnostics (orphan events, unresolved\n"
        "            faults); --chrome exports lineage spans\n"
        "\n"
        "common options:\n"
        "  --strict        malformed lines, truncated tails, and\n"
        "                  lineage integrity violations exit 1\n"
        "\n"
        "filter predicates:\n"
        "  --kind NAME     event kind (command, detection, retry, ...)\n"
        "  --label TEXT    exact label match\n"
        "  --cycle-min N   keep events at cycle >= N\n"
        "  --cycle-max N   keep events at cycle <= N\n"
        "\n"
        "export / lineage options:\n"
        "  --chrome        Chrome trace-event JSON (Perfetto-loadable)\n"
        "  -o, --out PATH  write to PATH instead of stdout\n"
        "  --limit N       lineage: print at most N fault timelines\n"
        "                  (default 20; 0 = all)\n");
    std::fprintf(to, "\nknown kinds:");
    for (unsigned k = 0; k < obs::numEventKinds; ++k) {
        std::fprintf(to, " %s",
                     obs::eventKindName(
                         static_cast<obs::EventKind>(k))
                         .c_str());
    }
    std::fprintf(to, "\n");
}

/**
 * Load and concatenate every input file; exits on unreadable files.
 * With @p strict, malformed lines and truncated tails exit 1 instead
 * of warning — recorded campaign traces are complete by construction,
 * so in CI any parse damage means the artifact cannot be trusted.
 */
std::vector<obs::TraceEvent>
loadAll(const std::vector<std::string> &paths, bool strict)
{
    std::vector<obs::TraceEvent> events;
    bool damaged = false;
    for (const std::string &path : paths) {
        obs::TraceFile tf = obs::readTraceFile(path);
        if (!tf.opened) {
            std::fprintf(stderr, "aiecc-trace: cannot read %s\n",
                         path.c_str());
            std::exit(1);
        }
        if (tf.badLines) {
            damaged = true;
            std::fprintf(stderr,
                         "aiecc-trace: %s: %llu malformed line(s) "
                         "skipped (first: %s)\n",
                         path.c_str(),
                         static_cast<unsigned long long>(tf.badLines),
                         tf.firstError.c_str());
        }
        if (tf.truncatedTail) {
            damaged = true;
            std::fprintf(stderr,
                         "aiecc-trace: %s: truncated final record "
                         "dropped (writer stopped mid-write?)\n",
                         path.c_str());
        }
        events.insert(events.end(), tf.events.begin(), tf.events.end());
    }
    if (strict && damaged) {
        std::fprintf(stderr,
                     "aiecc-trace: --strict: damaged input is a hard "
                     "error\n");
        std::exit(1);
    }
    return events;
}

int
cmdSummary(const std::vector<std::string> &paths, bool strict)
{
    const std::vector<obs::TraceEvent> events = loadAll(paths, strict);
    const obs::TraceSummary sum = obs::summarizeTrace(events);

    std::printf("%llu events over cycles [%llu, %llu]\n\n",
                static_cast<unsigned long long>(sum.totalEvents),
                static_cast<unsigned long long>(sum.firstCycle),
                static_cast<unsigned long long>(sum.lastCycle));
    std::printf("%-16s %10s %12s %12s %12s %12s\n", "kind", "count",
                "per-kcycle", "gap-mean", "gap-p50", "gap-p99");
    for (const auto &[kind, ks] : sum.byKind) {
        std::printf("%-16s %10llu %12.3f %12.1f %12.1f %12.1f\n",
                    obs::eventKindName(kind).c_str(),
                    static_cast<unsigned long long>(ks.count),
                    sum.ratePerKiloCycle(kind), ks.gaps.mean(),
                    ks.gaps.quantile(0.50), ks.gaps.quantile(0.99));
    }
    for (const auto &[kind, ks] : sum.byKind) {
        if (ks.byLabel.empty() ||
            (ks.byLabel.size() == 1 && ks.byLabel.count("")))
            continue;
        std::printf("\n%s by label:\n", obs::eventKindName(kind).c_str());
        for (const auto &[label, n] : ks.byLabel) {
            std::printf("  %-24s %10llu\n",
                        label.empty() ? "(none)" : label.c_str(),
                        static_cast<unsigned long long>(n));
        }
    }
    return 0;
}

int
cmdFilter(const obs::TraceFilter &filter,
          const std::vector<std::string> &paths, bool strict)
{
    const std::vector<obs::TraceEvent> events = loadAll(paths, strict);
    uint64_t matched = 0;
    for (const obs::TraceEvent &event :
         obs::filterEvents(events, filter)) {
        obs::JsonWriter w(0);
        event.writeJson(w);
        std::printf("%s\n", w.str().c_str());
        ++matched;
    }
    std::fprintf(stderr, "aiecc-trace: %llu of %llu events matched\n",
                 static_cast<unsigned long long>(matched),
                 static_cast<unsigned long long>(events.size()));
    return 0;
}

int
cmdExport(const std::string &outPath,
          const std::vector<std::string> &paths, bool strict)
{
    const std::vector<obs::TraceEvent> events = loadAll(paths, strict);
    obs::JsonWriter w;
    const uint64_t spans = obs::writeChromeTrace(events, w);
    if (outPath.empty()) {
        std::printf("%s\n", w.str().c_str());
    } else if (!w.writeFile(outPath)) {
        std::fprintf(stderr, "aiecc-trace: cannot write %s\n",
                     outPath.c_str());
        return 1;
    } else {
        std::fprintf(stderr,
                     "aiecc-trace: %llu events, %llu episode span(s) "
                     "-> %s\n",
                     static_cast<unsigned long long>(events.size()),
                     static_cast<unsigned long long>(spans),
                     outPath.c_str());
    }
    return 0;
}

/** One short timeline line per event of a fault. */
void
printTimeline(const obs::FaultTimeline &ft)
{
    std::printf("fault %016llx  %zu event(s)%s%s\n",
                static_cast<unsigned long long>(ft.faultId),
                ft.events.size(),
                ft.injected ? "" : "  [NO INJECT — orphan]",
                ft.resolved ? "" : "  [UNRESOLVED]");
    for (const obs::TraceEvent &event : ft.events) {
        std::printf("  cycle %8llu  %-14s %-20s value=%llu%s%s\n",
                    static_cast<unsigned long long>(event.cycle),
                    obs::eventKindName(event.kind).c_str(),
                    event.label.empty() ? "-" : event.label.c_str(),
                    static_cast<unsigned long long>(event.value),
                    event.detail.empty() ? "" : "  ",
                    event.detail.c_str());
    }
}

int
cmdLineage(bool chrome, const std::string &outPath, uint64_t limit,
           const std::vector<std::string> &paths, bool strict)
{
    const std::vector<obs::TraceEvent> events = loadAll(paths, strict);
    const obs::LineageView view = obs::buildLineageView(events);

    if (chrome) {
        obs::JsonWriter w;
        const uint64_t spans = obs::writeLineageChromeTrace(view, w);
        if (outPath.empty()) {
            std::printf("%s\n", w.str().c_str());
        } else if (!w.writeFile(outPath)) {
            std::fprintf(stderr, "aiecc-trace: cannot write %s\n",
                         outPath.c_str());
            return 1;
        } else {
            std::fprintf(stderr,
                         "aiecc-trace: %zu fault(s), %llu lineage "
                         "span(s) -> %s\n",
                         view.faults.size(),
                         static_cast<unsigned long long>(spans),
                         outPath.c_str());
        }
    } else {
        std::printf("%zu fault(s) across %zu event(s)\n",
                    view.faults.size(), events.size());
        uint64_t shown = 0;
        for (const obs::FaultTimeline &ft : view.faults) {
            if (limit && shown >= limit) {
                std::printf("... and %zu more fault(s) (--limit 0 "
                            "shows all)\n",
                            view.faults.size() -
                                static_cast<size_t>(shown));
                break;
            }
            printTimeline(ft);
            ++shown;
        }
    }

    // Integrity diagnostics go to stderr either way; under --strict a
    // broken lineage (a producer lost an inject or resolve edge) is a
    // hard failure, mirroring the coverage auditor's conservation rule.
    const bool broken =
        view.orphanEvents || view.unresolved || view.resolveWithoutInject;
    if (broken) {
        std::fprintf(
            stderr,
            "aiecc-trace: lineage integrity: %llu orphan event(s), "
            "%llu unresolved fault(s), %llu resolve(s) without "
            "inject\n",
            static_cast<unsigned long long>(view.orphanEvents),
            static_cast<unsigned long long>(view.unresolved),
            static_cast<unsigned long long>(view.resolveWithoutInject));
        if (strict)
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help") {
        usage(stdout);
        return 0;
    }

    obs::TraceFilter filter;
    bool chrome = false;
    bool strict = false;
    uint64_t limit = 20;
    std::string outPath;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--kind") && i + 1 < argc) {
            const auto kind = obs::eventKindFromName(argv[++i]);
            if (!kind) {
                std::fprintf(stderr, "aiecc-trace: unknown kind: %s\n",
                             argv[i]);
                return 2;
            }
            filter.kind = *kind;
        } else if (!std::strcmp(arg, "--label") && i + 1 < argc) {
            filter.label = argv[++i];
        } else if (!std::strcmp(arg, "--cycle-min") && i + 1 < argc) {
            filter.cycleMin = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(arg, "--cycle-max") && i + 1 < argc) {
            filter.cycleMax = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(arg, "--chrome")) {
            chrome = true;
        } else if (!std::strcmp(arg, "--strict")) {
            strict = true;
        } else if (!std::strcmp(arg, "--limit") && i + 1 < argc) {
            limit = std::strtoull(argv[++i], nullptr, 10);
        } else if ((!std::strcmp(arg, "-o") ||
                    !std::strcmp(arg, "--out")) &&
                   i + 1 < argc) {
            outPath = argv[++i];
        } else if (!std::strcmp(arg, "--help")) {
            usage(stdout);
            return 0;
        } else if (arg[0] == '-' && arg[1] != '\0') {
            std::fprintf(stderr,
                         "aiecc-trace: unknown or incomplete option: "
                         "%s\n",
                         arg);
            usage(stderr);
            return 2;
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr, "aiecc-trace: no input files\n");
        usage(stderr);
        return 2;
    }

    if (cmd == "summary")
        return cmdSummary(paths, strict);
    if (cmd == "filter")
        return cmdFilter(filter, paths, strict);
    if (cmd == "export") {
        if (!chrome) {
            std::fprintf(stderr,
                         "aiecc-trace: export requires a format flag "
                         "(--chrome)\n");
            return 2;
        }
        return cmdExport(outPath, paths, strict);
    }
    if (cmd == "lineage")
        return cmdLineage(chrome, outPath, limit, paths, strict);
    std::fprintf(stderr, "aiecc-trace: unknown command: %s\n",
                 cmd.c_str());
    usage(stderr);
    return 2;
}
