/**
 * @file
 * A compact CCCA fault-injection campaign for the GDDR5 adaptation
 * (Section VI): golden-vs-faulty dual simulation, 1-pin and all-pin
 * errors on the 21 injectable CA pins, outcome classification shared
 * with the DDR4 campaign.
 */

#ifndef AIECC_GDDR5_CAMPAIGN_HH
#define AIECC_GDDR5_CAMPAIGN_HH

#include "gddr5/system.hh"
#include "inject/campaign.hh" // Outcome / outcomeName reuse
#include "obs/lineage.hh"

namespace aiecc
{
namespace gddr5
{

/** Command patterns mirroring the DDR4 campaign's five. */
enum class Pattern
{
    ActWr,
    ActRd,
    Wr,
    Rd,
    Pre,
};

std::vector<Pattern> allGddr5Patterns();
std::string gddr5PatternName(Pattern pattern);

/** Error spec: flip a set of pins, or randomize all (clock noise). */
struct Gddr5Error
{
    std::vector<Pin> flips;
    bool allPin = false;
    uint64_t noiseSeed = 0;

    static Gddr5Error onePin(Pin pin) { return {{pin}, false, 0}; }
    static Gddr5Error allPins(uint64_t seed) { return {{}, true, seed}; }
};

/** Injectable pins (CKE..A0; no PAR exists on GDDR5). */
std::vector<Pin> gddr5InjectablePins();

/** One trial's result. */
struct Gddr5Trial
{
    Outcome outcome = Outcome::NoEffect;
    bool detected = false;
    std::vector<Detector> detectors;
};

/** Aggregate counts. */
struct Gddr5Stats
{
    unsigned trials = 0, detected = 0, noEffect = 0, corrected = 0,
             due = 0, sdc = 0, mdc = 0, both = 0;

    void add(const Gddr5Trial &trial);

    /** Fold @p other's counts into this aggregate. */
    void merge(const Gddr5Stats &other);

    /**
     * Byte-stable checkpoint state form.  deserializeState() replaces
     * this aggregate and panics on malformed input (checkpoint
     * payloads are digest-verified first).
     */
    std::string serializeState() const;
    void deserializeState(const std::string &text);

    double
    coveredFrac() const
    {
        if (!trials)
            return 0;
        return static_cast<double>(trials - (sdc + mdc - both)) /
               trials;
    }
};

/** Campaign runner for one protection configuration. */
class Gddr5Campaign
{
  public:
    explicit Gddr5Campaign(const Protection &prot,
                           uint64_t seed = 0x6CA4);

    /**
     * Trials per worker shard in runTrials()/runTrialsCheckpointed();
     * never output-affecting (trials are pure in (prot, seed,
     * pattern, error)).  Public so campaign drivers can convert shard
     * progress to trial counts (heartbeat telemetry).
     */
    static constexpr uint64_t trialShardSize = 4;

    /**
     * Trials read only the immutable (prot, seed) configuration, so
     * runTrial is const and safe to call from concurrent shards.
     */
    Gddr5Trial runTrial(Pattern pattern, const Gddr5Error &error) const;

    /**
     * Run @p errors against @p pattern on @p jobs threads (1 =
     * inline, 0 = hardware auto); results come back in input order
     * and are bit-identical for every jobs value.
     */
    std::vector<Gddr5Trial>
    runTrials(Pattern pattern, const std::vector<Gddr5Error> &errors,
              unsigned jobs = 1) const;

    Gddr5Stats sweepOnePin(Pattern pattern, unsigned jobs = 1) const;
    Gddr5Stats sweepAllPin(Pattern pattern, unsigned samples,
                           unsigned jobs = 1) const;

    /**
     * Checkpointed runTrials(): execute @p errors in contiguous shard
     * batches starting at @p nextShard (inner shard size identical to
     * runTrials(), so the decomposition and every fault ID match).
     * Each batch's shard-local ledgers merge in shard order and
     * @p onResult fires per trial in global order before
     * @p commit(begin, end) lets the caller persist.  The caller owns
     * resume positioning: on entry the trial counter must sit at this
     * unit's start (see advanceTrials()); on Completed it advances
     * past the unit.
     */
    RunStatus runTrialsCheckpointed(
        Pattern pattern, const std::vector<Gddr5Error> &errors,
        unsigned jobs, uint64_t batchShards, uint64_t &nextShard,
        const std::function<void(uint64_t, const Gddr5Trial &)> &onResult,
        const std::function<void(uint64_t, uint64_t)> &commit) const;

    /**
     * Advance the global trial counter by @p n without running trials
     * — resume-time positioning past units completed by an earlier
     * process, keeping later fault IDs identical.
     */
    void advanceTrials(uint64_t n) const { trialCounter += n; }

    /** Global trial counter (fault-ID numbering state). */
    uint64_t trialCount() const { return trialCounter; }

    /**
     * Attach a fault-lineage ledger (nullptr detaches).  Trials stay
     * pure; the lineage bookkeeping happens in runTrials(), which
     * derives each fault's ID from the campaign-global trial index
     * (advanced in the single-threaded prologue) and records
     * injection + terminal resolution per trial, merged in shard
     * order — so ledgers are bit-identical for every jobs value.
     * Direct runTrial() calls bypass the ledger by design.
     */
    void setLineageLedger(obs::LineageLedger *lineage)
    {
        ledger = lineage;
    }

  private:
    Protection prot;
    uint64_t seed;
    obs::LineageLedger *ledger = nullptr;
    /** Campaign-global trial numbering for lineage fault IDs. */
    mutable uint64_t trialCounter = 0;
};

} // namespace gddr5
} // namespace aiecc

#endif // AIECC_GDDR5_CAMPAIGN_HH
