/**
 * @file
 * Polynomials over GF(2^8), the workhorse of the Reed-Solomon codec:
 * generator-polynomial construction, evaluation, products and formal
 * derivatives all operate on this type.
 */

#ifndef AIECC_GF_POLY_HH
#define AIECC_GF_POLY_HH

#include <cstddef>
#include <vector>

#include "gf/gf256.hh"

namespace aiecc
{

/**
 * A dense polynomial over GF(2^8).
 *
 * Coefficients are stored low-degree-first: coeff[i] multiplies x^i.
 * The zero polynomial has an empty coefficient vector and degree() -1.
 */
class Gf256Poly
{
  public:
    /** The zero polynomial. */
    Gf256Poly() = default;

    /** Construct from low-degree-first coefficients. */
    explicit Gf256Poly(std::vector<GfElem> coeffs);

    /** The constant polynomial @p c (zero polynomial if c == 0). */
    static Gf256Poly constant(GfElem c);

    /** The monomial c * x^degree. */
    static Gf256Poly monomial(GfElem c, size_t degree);

    /** Degree; -1 for the zero polynomial. */
    int degree() const { return static_cast<int>(coeff.size()) - 1; }

    /** True for the zero polynomial. */
    bool zero() const { return coeff.empty(); }

    /** Coefficient of x^i (0 beyond the stored degree). */
    GfElem operator[](size_t i) const
    {
        return i < coeff.size() ? coeff[i] : 0;
    }

    /** Raw coefficient access, low-degree-first. */
    const std::vector<GfElem> &coefficients() const { return coeff; }

    /** Horner evaluation at @p x. */
    GfElem eval(GfElem x) const;

    /** Polynomial sum (= difference in characteristic 2). */
    Gf256Poly operator+(const Gf256Poly &other) const;

    /** Polynomial product. */
    Gf256Poly operator*(const Gf256Poly &other) const;

    /** Scale every coefficient by @p c. */
    Gf256Poly scale(GfElem c) const;

    /** Multiply by x^n (shift coefficients up). */
    Gf256Poly shift(size_t n) const;

    /**
     * Remainder of this polynomial modulo @p divisor.
     * @pre divisor is nonzero (panics otherwise).
     */
    Gf256Poly mod(const Gf256Poly &divisor) const;

    /** Formal derivative (in characteristic 2, even terms vanish). */
    Gf256Poly derivative() const;

    /** Truncate to coefficients of degree < @p n. */
    Gf256Poly truncate(size_t n) const;

    bool operator==(const Gf256Poly &other) const
    {
        return coeff == other.coeff;
    }

    /**
     * The Reed-Solomon generator polynomial
     * prod_{i=0}^{nroots-1} (x - alpha^(fcr + i)).
     *
     * @param nroots Number of parity symbols.
     * @param fcr First consecutive root exponent (commonly 0 or 1).
     */
    static Gf256Poly rsGenerator(unsigned nroots, unsigned fcr);

  private:
    std::vector<GfElem> coeff;

    /** Drop high-order zero coefficients. */
    void normalize();
};

} // namespace aiecc

#endif // AIECC_GF_POLY_HH
