#include "aiecc/detection.hh"

namespace aiecc
{

std::string
mechanismName(Mechanism mech)
{
    switch (mech) {
      case Mechanism::Cap: return "CAP";
      case Mechanism::ECap: return "eCAP";
      case Mechanism::Wcrc: return "WCRC";
      case Mechanism::EWcrc: return "eWCRC";
      case Mechanism::Cstc: return "CSTC";
      case Mechanism::Decc: return "DECC";
      case Mechanism::EDecc: return "eDECC";
    }
    return "?";
}

} // namespace aiecc
