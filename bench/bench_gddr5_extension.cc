/**
 * @file
 * Section VI extension experiment: AIECC applied to GDDR5.
 *
 * GDDR5's per-lane EDC pin already carries a CRC-8 both ways; the
 * paper sketches how AIECC rides it — fold the block address into the
 * write EDC (eWCRC-G), fold address + WRT + CA parity into the read
 * EDC (the eCAP/eDECC stand-in, since GDDR5 has no PAR pin), and reuse
 * the CSTC with GDDR5 timing.  This bench measures CCCA error
 * coverage for the unprotected channel, baseline GDDR5 EDC, and the
 * full adaptation.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "gddr5/campaign.hh"

using namespace aiecc;
using namespace aiecc::gddr5;

int
main(int argc, char **argv)
{
    const auto opt = bench::parse(argc, argv);
    const unsigned allPinSamples =
        opt.allPin ? opt.allPin : (opt.quick ? 15u : 60u);

    bench::banner("Section VI: AIECC on GDDR5 (extension experiment)");

    struct Config
    {
        const char *name;
        Protection prot;
    };
    const Config configs[] = {
        {"none", Protection::none()},
        {"GDDR5 EDC", Protection::baseline()},
        {"EDC+CSTC", {true, false, false, true}},
        {"AIECC-G", Protection::aiecc()},
    };

    struct ProtRow
    {
        std::string name;
        std::vector<double> covered;
        unsigned harm = 0;
    };
    std::vector<std::pair<std::string, std::vector<ProtRow>>> all;

    for (const char *model : {"1-pin", "all-pin"}) {
        std::printf("---- %s errors (coverage per pattern) ----\n",
                    model);
        TextTable t;
        std::vector<std::string> head{"protection"};
        for (Pattern pattern : allGddr5Patterns())
            head.push_back(gddr5PatternName(pattern));
        head.push_back("SDC+MDC total");
        t.header(head);
        std::vector<ProtRow> rows;
        for (const auto &config : configs) {
            Gddr5Campaign campaign(config.prot);
            std::vector<std::string> row{config.name};
            ProtRow pr;
            pr.name = config.name;
            for (Pattern pattern : allGddr5Patterns()) {
                const auto stats =
                    std::string(model) == "1-pin"
                        ? campaign.sweepOnePin(pattern)
                        : campaign.sweepAllPin(pattern, allPinSamples);
                row.push_back(TextTable::pct(stats.coveredFrac()));
                pr.covered.push_back(stats.coveredFrac());
                pr.harm += stats.sdc + stats.mdc;
            }
            row.push_back(std::to_string(pr.harm));
            t.row(row);
            rows.push_back(std::move(pr));
        }
        std::printf("%s\n", t.str().c_str());
        all.emplace_back(model, std::move(rows));
    }

    bench::writeJsonArtifact(
        opt, "gddr5_extension", [&](obs::JsonWriter &w) {
            w.beginObject();
            w.kv("allpin_samples", allPinSamples);
            w.key("models");
            w.beginObject();
            for (const auto &[model, rows] : all) {
                w.key(model);
                w.beginObject();
                for (const auto &pr : rows) {
                    w.key(pr.name);
                    w.beginObject();
                    const auto patterns = allGddr5Patterns();
                    for (size_t i = 0; i < patterns.size(); ++i)
                        w.kv(gddr5PatternName(patterns[i]),
                             pr.covered[i]);
                    w.kv("sdc_mdc_total", pr.harm);
                    w.endObject();
                }
                w.endObject();
            }
            w.endObject();
            w.endObject();
        });

    std::printf(
        "Reading the table:\n"
        "  * baseline GDDR5 EDC protects the *link* only - a read of "
        "the wrong\n    location returns a self-consistent CRC, so "
        "address and command\n    errors stream through;\n"
        "  * the AIECC adaptation reuses the same EDC pin (no new "
        "signals) and\n    reaches full coverage, mirroring the DDR4 "
        "result of Figure 7.\n");
    return 0;
}
