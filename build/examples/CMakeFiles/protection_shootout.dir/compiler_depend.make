# Empty compiler generated dependencies file for protection_shootout.
# This may be replaced when dependencies are built.
