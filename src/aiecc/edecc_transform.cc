#include "aiecc/edecc_transform.hh"

namespace aiecc
{

void
EDeccTransformQpc::applyMask(Burst &burst, uint32_t mtbAddr)
{
    for (unsigned i = 0; i < numSubBlocks; ++i) {
        if (!((mtbAddr >> i) & 1))
            continue;
        const unsigned beat = i % Burst::numBeats;
        const unsigned pin0 = (i / Burst::numBeats) * subBlockBits;
        for (unsigned p = 0; p < subBlockBits; ++p)
            burst.setBit(pin0 + p, beat, !burst.getBit(pin0 + p, beat));
    }
}

Burst
EDeccTransformQpc::encode(const BitVec &data, uint32_t mtbAddr) const
{
    // Check bits over the untransformed payload; the stored data is
    // the transformed payload.  A matching read address restores the
    // payload the parity was computed over.
    Burst out = inner.encode(data, 0);
    applyMask(out, mtbAddr);
    return out;
}

EccResult
EDeccTransformQpc::decode(const Burst &burst, uint32_t mtbAddr) const
{
    Burst restored = burst;
    applyMask(restored, mtbAddr);
    EccResult res = inner.decode(restored, 0);
    if (res.status == EccStatus::Uncorrectable) {
        // An address mismatch manifests as a wide orthogonal error
        // pattern; the decoder cannot distinguish it from severe data
        // corruption, so no address diagnosis is available.
        res.addressError = false;
    }
    return res;
}

} // namespace aiecc
