/**
 * @file
 * Precise CCCA error diagnosis (Section IV-F).
 *
 * When eDECC recovers the address DRAM actually used, comparing it
 * with the intended address pinpoints the faulty address bits — and,
 * through the command's pin mapping, the faulty physical pins.  Repair
 * logic can then retune the drive/delay of exactly those pins.
 */

#ifndef AIECC_AIECC_DIAGNOSIS_HH
#define AIECC_AIECC_DIAGNOSIS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ddr4/address.hh"
#include "ddr4/pins.hh"

namespace aiecc
{

/** The result of diagnosing one address mismatch. */
struct AddressDiagnosis
{
    uint32_t intended = 0;   ///< packed MTB address the host meant
    uint32_t observed = 0;   ///< packed MTB address DRAM used
    /** MTB-address bit positions that differ. */
    std::vector<unsigned> faultyBits;
    /**
     * Physical pins implicated for a given command type: row-address
     * bits map to ACT-time pins, column bits to RD/WR-time pins, bank
     * bits to BG/BA pins.
     */
    std::vector<Pin> suspectPins;

    bool faulty() const { return !faultyBits.empty(); }
    std::string toString() const;
};

/**
 * Diagnose an address mismatch reported by eDECC.
 *
 * @param intended Packed address the controller believes it accessed.
 * @param observed Packed address recovered from the codeword.
 * @param geom Address geometry (for field boundaries).
 * @return Faulty bit positions and the implicated CCCA pins.
 */
AddressDiagnosis diagnoseAddress(uint32_t intended, uint32_t observed,
                                 const Geometry &geom = Geometry{});

} // namespace aiecc

#endif // AIECC_AIECC_DIAGNOSIS_HH
