#include "workload/trace.hh"

#include <deque>

#include "common/logging.hh"

namespace aiecc
{

std::vector<TraceRecord>
generateTrace(const WorkloadParams &params, uint64_t accesses,
              const Geometry &geom)
{
    Rng rng(params.seed ^ 0x7240CE);
    const unsigned numBanks = geom.numBanks();
    std::vector<long long> openRow(numBanks, -1);

    std::vector<TraceRecord> trace;
    trace.reserve(accesses);
    for (uint64_t i = 0; i < accesses; ++i) {
        TraceRecord rec;
        rec.write = !rng.chance(params.readFrac);
        const unsigned bank = static_cast<unsigned>(rng.below(numBanks));
        const bool rowHit =
            openRow[bank] >= 0 && rng.chance(params.rowHitRate);
        if (!rowHit) {
            // A compact footprint keeps re-reference distances short
            // so corruption planted by an error is actually revisited.
            openRow[bank] =
                static_cast<long long>(rng.below(16));
        }
        rec.addr.rank = 0;
        rec.addr.bg = bank / geom.banksPerGroup();
        rec.addr.ba = bank % geom.banksPerGroup();
        rec.addr.row = static_cast<unsigned>(openRow[bank]);
        rec.addr.col = static_cast<unsigned>(rng.below(8));
        trace.push_back(rec);
    }
    return trace;
}

namespace
{

BitVec
versionedPayload(uint32_t packedAddr, uint64_t version)
{
    Rng rng((static_cast<uint64_t>(packedAddr) << 24) ^ version ^
            0x9A71);
    BitVec d(Burst::dataBits);
    for (size_t i = 0; i < d.size(); i += 64)
        d.setField(i, 64, rng.next());
    return d;
}

} // namespace

void
ReplayReport::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    w.kv("accesses", accesses);
    w.kv("command_edges", commandEdges);
    w.kv("injected_errors", injectedErrors);
    w.kv("detections", detections);
    w.kv("retries", retries);
    w.kv("flagged_reads", flaggedReads);
    w.kv("corrupt_reads", corruptReads);
    w.key("by_mechanism");
    w.beginObject();
    for (const auto &[mech, count] : byMechanism)
        w.kv(mechanismName(mech), count);
    w.endObject();
    w.endObject();
}

ReplayReport
replayTrace(ProtectionStack &stack,
            const std::vector<TraceRecord> &trace,
            const ReplayConfig &config)
{
    ReplayReport report;
    Rng noise(config.seed);
    const Geometry geom = stack.geometry();
    const bool parPresent = stack.mechanisms().parPinPresent();
    const auto pins = injectablePins(parPresent);

    // Mirror the report into the stack's observer, if it carries one.
    obs::Observer *obsHook = stack.observer();
    obs::Counter *accessCtr = nullptr;
    obs::Counter *retryCtr = nullptr;
    obs::Counter *flaggedCtr = nullptr;
    obs::Counter *corruptCtr = nullptr;
    if (obsHook && obsHook->stats()) {
        obs::StatsRegistry &reg = *obsHook->stats();
        accessCtr = &reg.counter("replay.accesses",
                                 "trace accesses replayed");
        retryCtr = &reg.counter(
            "stack.retries", "accesses re-executed after a detection");
        flaggedCtr = &reg.counter(
            "replay.flagged_reads", "DUEs delivered to the consumer");
        corruptCtr = &reg.counter(
            "replay.corrupt_reads", "silently corrupt reads consumed");
    }

    // Transmission noise on every command edge.
    uint64_t injected = 0;
    stack.setPinCorruptor([&](uint64_t, PinWord &word) {
        if (!noise.chance(config.edgeErrorRate))
            return;
        ++injected;
        const unsigned flips =
            noise.chance(config.twoPinFrac) ? 2u : 1u;
        for (unsigned i : noise.sample(
                 static_cast<unsigned>(pins.size()), flips)) {
            word.flip(pins[i]);
        }
    });

    std::map<uint32_t, uint64_t> version; // expected data per block
    uint64_t writeCounter = 0;

    auto doAccess = [&](const TraceRecord &rec) -> bool {
        // Returns true if the access completed without detection.
        const size_t before = stack.detections().size();
        if (rec.write) {
            const uint64_t v = ++writeCounter;
            stack.write(rec.addr,
                        versionedPayload(rec.addr.pack(geom), v));
            if (stack.detections().size() == before) {
                version[rec.addr.pack(geom)] = v;
                return true;
            }
            return false;
        }
        const auto out = stack.read(rec.addr);
        const bool flagged = stack.detections().size() > before;
        if (!flagged) {
            const auto it = version.find(rec.addr.pack(geom));
            if (it != version.end() &&
                out.data !=
                    versionedPayload(rec.addr.pack(geom), it->second)) {
                ++report.corruptReads;
                if (corruptCtr)
                    ++*corruptCtr;
            }
            return true;
        }
        if (out.due || out.detected) {
            ++report.flaggedReads;
            if (flaggedCtr)
                ++*flaggedCtr;
        }
        return false;
    };

    // The controller's retry window: a detection (e.g. eCAP firing on
    // the command *after* a lost write) implicates recently issued
    // commands, so recovery replays the recent access window — the
    // write-queue replay a real controller performs (§IV-G).
    std::deque<TraceRecord> window;
    constexpr size_t windowDepth = 4;

    for (const auto &rec : trace) {
        ++report.accesses;
        if (accessCtr)
            ++*accessCtr;
        window.push_back(rec);
        if (window.size() > windowDepth)
            window.pop_front();
        if (!doAccess(rec)) {
            stack.recover();
            for (const auto &pending : window) {
                ++report.retries;
                if (retryCtr)
                    ++*retryCtr;
                if (obsHook) {
                    obsHook->emit(obs::EventKind::Retry,
                                  stack.controller().now(),
                                  pending.write ? "wr" : "rd",
                                  pending.addr.pack(geom),
                                  "window replay @" +
                                      pending.addr.toString());
                }
                doAccess(pending);
            }
        }
    }

    report.commandEdges = stack.controller().commandsIssued();
    report.injectedErrors = injected;
    for (const auto &ev : stack.detections()) {
        ++report.detections;
        ++report.byMechanism[ev.mech];
    }
    stack.setPinCorruptor({});
    return report;
}

} // namespace aiecc
