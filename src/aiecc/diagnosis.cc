#include "aiecc/diagnosis.hh"

#include <algorithm>
#include <sstream>

namespace aiecc
{

namespace
{

/** Pin that carries row-address bit i during an ACT command. */
Pin
rowBitPin(unsigned i)
{
    static constexpr Pin pins[18] = {
        Pin::A0, Pin::A1, Pin::A2, Pin::A3, Pin::A4, Pin::A5, Pin::A6,
        Pin::A7, Pin::A8, Pin::A9, Pin::A10_AP, Pin::A11, Pin::A12_BC,
        Pin::A13, Pin::WE_A14, Pin::CAS_A15, Pin::RAS_A16, Pin::A17,
    };
    return pins[i];
}

/** Pin that carries MTB-column bit i during a RD/WR command. */
Pin
colBitPin(unsigned i)
{
    // MTB column bit i is burst-column bit i + 3 (A3.. for BL8 blocks).
    static constexpr Pin pins[7] = {
        Pin::A3, Pin::A4, Pin::A5, Pin::A6, Pin::A7, Pin::A8, Pin::A9,
    };
    return pins[i];
}

} // namespace

AddressDiagnosis
diagnoseAddress(uint32_t intended, uint32_t observed, const Geometry &geom)
{
    AddressDiagnosis diag;
    diag.intended = intended;
    diag.observed = observed;

    const uint32_t delta = intended ^ observed;
    for (unsigned bit = 0; bit < 32; ++bit) {
        if ((delta >> bit) & 1)
            diag.faultyBits.push_back(bit);
    }

    // Map address fields back to the pins that carried them.
    const unsigned colLo = 0;
    const unsigned rowLo = colLo + geom.mtbColBits();
    const unsigned baLo = rowLo + geom.rowBits;
    const unsigned bgLo = baLo + geom.baBits;

    for (unsigned bit : diag.faultyBits) {
        Pin pin;
        if (bit < rowLo) {
            pin = colBitPin(bit - colLo);
        } else if (bit < baLo) {
            pin = rowBitPin(bit - rowLo);
        } else if (bit < bgLo) {
            pin = (bit - baLo) == 0 ? Pin::BA0 : Pin::BA1;
        } else if (bit < bgLo + geom.bgBits) {
            pin = (bit - bgLo) == 0 ? Pin::BG0 : Pin::BG1;
        } else {
            // Rank bits map to per-rank chip selects; report CS.
            pin = Pin::CS;
        }
        if (std::find(diag.suspectPins.begin(), diag.suspectPins.end(),
                      pin) == diag.suspectPins.end()) {
            diag.suspectPins.push_back(pin);
        }
    }
    return diag;
}

std::string
AddressDiagnosis::toString() const
{
    std::ostringstream out;
    if (!faulty()) {
        out << "addresses agree";
        return out.str();
    }
    out << "intended 0x" << std::hex << intended << " observed 0x"
        << observed << std::dec << "; faulty MTB bits {";
    for (size_t i = 0; i < faultyBits.size(); ++i)
        out << (i ? "," : "") << faultyBits[i];
    out << "}; suspect pins {";
    for (size_t i = 0; i < suspectPins.size(); ++i)
        out << (i ? "," : "") << pinName(suspectPins[i]);
    out << "}";
    return out.str();
}

} // namespace aiecc
