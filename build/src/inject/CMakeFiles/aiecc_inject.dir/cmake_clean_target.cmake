file(REMOVE_RECURSE
  "libaiecc_inject.a"
)
