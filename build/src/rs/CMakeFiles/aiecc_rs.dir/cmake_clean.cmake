file(REMOVE_RECURSE
  "CMakeFiles/aiecc_rs.dir/rs_code.cc.o"
  "CMakeFiles/aiecc_rs.dir/rs_code.cc.o.d"
  "libaiecc_rs.a"
  "libaiecc_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiecc_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
