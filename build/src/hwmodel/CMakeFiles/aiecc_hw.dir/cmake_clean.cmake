file(REMOVE_RECURSE
  "CMakeFiles/aiecc_hw.dir/gate_model.cc.o"
  "CMakeFiles/aiecc_hw.dir/gate_model.cc.o.d"
  "libaiecc_hw.a"
  "libaiecc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiecc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
