/**
 * @file
 * Unit tests for the sliding-window counters: bucketed expiry,
 * late/backwards events, the covered-span rate denominator, the
 * bucket-aligned shard merge, and the checkpoint round-trip.
 */

#include <gtest/gtest.h>

#include "obs/timeseries.hh"

namespace aiecc
{
namespace
{

TEST(SlidingWindow, StartsEmpty)
{
    obs::SlidingWindow w(100);
    EXPECT_EQ(w.windowTotal(), 0u);
    EXPECT_EQ(w.lifetimeTotal(), 0u);
    EXPECT_EQ(w.coveredCycles(), 0u);
    EXPECT_EQ(w.ratePerKilocycle(), 0.0);
    EXPECT_EQ(w.bucketCycles(), 100u);
    EXPECT_EQ(w.windowCycles(),
              100u * obs::SlidingWindow::numBuckets);
}

TEST(SlidingWindow, CountsInsideWindow)
{
    obs::SlidingWindow w(100);
    w.record(10);
    w.record(110, 3);
    w.record(250);
    EXPECT_EQ(w.windowTotal(), 5u);
    EXPECT_EQ(w.lifetimeTotal(), 5u);
}

TEST(SlidingWindow, OldEventsExpireAsTimeAdvances)
{
    obs::SlidingWindow w(100);
    w.record(10);
    // One full window later the first event's bucket has been expired.
    w.record(10 + w.windowCycles() + 100);
    EXPECT_EQ(w.windowTotal(), 1u);
    EXPECT_EQ(w.lifetimeTotal(), 2u);
}

TEST(SlidingWindow, AdvanceToExpiresWithoutCounting)
{
    obs::SlidingWindow w(100);
    w.record(10);
    EXPECT_EQ(w.windowTotal(), 1u);
    w.advanceTo(10 + 2 * w.windowCycles());
    EXPECT_EQ(w.windowTotal(), 0u);
    EXPECT_EQ(w.lifetimeTotal(), 1u);
}

// A shard replaying events behind the merged head must not corrupt
// the buckets: an event older than the current window counts in the
// lifetime total only.
TEST(SlidingWindow, BackwardsEventCountsLifetimeOnly)
{
    obs::SlidingWindow w(100);
    w.record(10 * w.windowCycles());
    const uint64_t inWindow = w.windowTotal();
    w.record(0);
    EXPECT_EQ(w.windowTotal(), inWindow);
    EXPECT_EQ(w.lifetimeTotal(), 2u);
}

TEST(SlidingWindow, RateUsesCoveredSpanWhileRampingUp)
{
    obs::SlidingWindow w(1000);
    w.record(0);
    w.record(999);
    // Only one bucket covered so far: rate = 2 events / 1000 cycles.
    EXPECT_EQ(w.coveredCycles(), 1000u);
    EXPECT_DOUBLE_EQ(w.ratePerKilocycle(), 2.0);
    w.record(3500);
    EXPECT_EQ(w.coveredCycles(), 4000u);
    EXPECT_DOUBLE_EQ(w.ratePerKilocycle(), 3.0 / 4.0);
}

TEST(SlidingWindow, MergeMatchesSingleStream)
{
    // Interleave one event stream into two shard-local windows; the
    // bucket-aligned merge must equal the single-stream result bit
    // for bit (the serialized state is the full state).
    obs::SlidingWindow all(100), a(100), b(100);
    for (uint64_t i = 0; i < 200; ++i) {
        const uint64_t cycle = i * 37;
        all.record(cycle);
        (i % 2 ? a : b).record(cycle);
    }
    a.merge(b);
    EXPECT_EQ(a.serializeState(), all.serializeState());
    EXPECT_EQ(a.windowTotal(), all.windowTotal());
    EXPECT_EQ(a.lifetimeTotal(), 200u);
}

TEST(SlidingWindow, MergeIsOrderIndependent)
{
    obs::SlidingWindow a1(64), b1(64), a2(64), b2(64);
    for (uint64_t i = 0; i < 50; ++i) {
        a1.record(i * 100);
        a2.record(i * 100);
    }
    for (uint64_t i = 0; i < 80; ++i) {
        b1.record(i * 63);
        b2.record(i * 63);
    }
    a1.merge(b1); // a then b
    b2.merge(a2); // b then a
    EXPECT_EQ(a1.serializeState(), b2.serializeState());
}

TEST(SlidingWindow, SerializeRoundTripIsExact)
{
    obs::SlidingWindow w(1 << 14);
    for (uint64_t i = 0; i < 300; ++i)
        w.record(i * 1777, 1 + i % 3);
    obs::SlidingWindow restored(1 << 14);
    restored.deserializeState(w.serializeState());
    EXPECT_EQ(restored.serializeState(), w.serializeState());
    EXPECT_EQ(restored.windowTotal(), w.windowTotal());
    EXPECT_EQ(restored.lifetimeTotal(), w.lifetimeTotal());
    EXPECT_EQ(restored.coveredCycles(), w.coveredCycles());
    // The restored window keeps evolving identically.
    w.record(300 * 1777);
    restored.record(300 * 1777);
    EXPECT_EQ(restored.serializeState(), w.serializeState());
}

TEST(SlidingWindow, ResetClearsEverything)
{
    obs::SlidingWindow w(100);
    w.record(5000, 7);
    w.reset();
    EXPECT_EQ(w.windowTotal(), 0u);
    EXPECT_EQ(w.lifetimeTotal(), 0u);
    EXPECT_EQ(w.coveredCycles(), 0u);
    obs::SlidingWindow fresh(100);
    EXPECT_EQ(w.serializeState(), fresh.serializeState());
}

} // namespace
} // namespace aiecc
