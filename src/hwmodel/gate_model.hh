/**
 * @file
 * Analytic hardware-overhead model (Section V-D).
 *
 * The paper synthesizes a Verilog model with Synopsys DC on TSMC 40nm
 * and reports NAND2-equivalent areas.  Without a synthesis flow, this
 * module estimates the same quantities structurally: XOR trees from
 * the (exact) GF(2) parity-check matrices of each mechanism, flip-flop
 * and comparator counts for the CSTC, converted with standard
 * gate-equivalent weights.  Absolute numbers are order-of-magnitude;
 * the ordering (ePAR << eWCRC ~ eDECC+AMD << eDECC+QPC ~ CSTC) is
 * structural and robust.
 */

#ifndef AIECC_HWMODEL_GATE_MODEL_HH
#define AIECC_HWMODEL_GATE_MODEL_HH

#include <string>
#include <vector>

#include "ddr4/address.hh"
#include "ddr4/timing.hh"

namespace aiecc
{

/** Gate-equivalent weights (NAND2 = 1). */
struct GateWeights
{
    double xor2 = 2.5;
    double flipflop = 6.0;
    double comparatorPerBit = 3.5; ///< subtract + compare per bit
    /** Logic-sharing factor a synthesizer achieves on XOR networks. */
    double xorSharing = 0.6;
};

/** One mechanism's estimated area and power. */
struct GateEstimate
{
    std::string name;
    double nand2 = 0;
    double powerMw = 0;
    /** The paper's reported value, for side-by-side printing. */
    double paperNand2 = 0;
    double paperPowerMw = 0;
};

/** Structural hardware model for every AIECC addition. */
class GateModel
{
  public:
    explicit GateModel(GateWeights weights = GateWeights{});

    /** eCAP addition: WRT flop + parity-tree extension (controller). */
    GateEstimate ePar() const;

    /** eWCRC addition: address extension of the per-chip CRC-8. */
    GateEstimate eWcrc() const;

    /** eDECC on AMD chipkill: 4 address-symbol parity contributions. */
    GateEstimate eDeccAmd() const;

    /** eDECC on QPC Bamboo: 4x8 constant GF(256) multipliers. */
    GateEstimate eDeccQpc() const;

    /** CSTC per DRAM chip: per-bank FSM + timing counters. */
    GateEstimate cstc(const Geometry &geom = Geometry{},
                      const TimingParams &timing =
                          TimingParams::ddr4_2400()) const;

    /** All estimates in paper order. */
    std::vector<GateEstimate> all() const;

    // --- building blocks (exposed for testing) ---

    /** NAND2 equivalents of an n-input XOR tree. */
    double xorTree(unsigned inputs) const;

    /**
     * NAND2 equivalents of a combinational CRC with the given number
     * of check bits over a message width, from the exact GF(2) matrix
     * density of the CRC polynomial.
     */
    double crcLogic(unsigned width, uint32_t poly,
                    unsigned messageBits) const;

    /** NAND2 equivalents of a constant GF(256) multiplier. */
    double gfConstMult() const;

    /** NAND2 equivalents of an n-bit loadable down-counter + zero cmp. */
    double timingCounter(unsigned bits) const;

  private:
    GateWeights w;
};

} // namespace aiecc

#endif // AIECC_HWMODEL_GATE_MODEL_HH
