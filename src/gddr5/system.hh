/**
 * @file
 * A GDDR5 channel (device + controller) with the AIECC adaptations of
 * Section VI: extended write EDC (address folded into the write CRC),
 * extended read EDC (address + WRT + last-command CA parity folded
 * into the read CRC over the same EDC pin), and the CSTC reused with
 * GDDR5 timing.
 */

#ifndef AIECC_GDDR5_SYSTEM_HH
#define AIECC_GDDR5_SYSTEM_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ddr4/timing.hh"
#include "dram/cstc.hh"
#include "gddr5/gddr5.hh"

namespace aiecc
{
namespace gddr5
{

/** Which protection features the channel runs with. */
struct Protection
{
    bool edc = false;           ///< baseline GDDR5 data EDC (rd + wr)
    bool extendWriteEdc = false; ///< eWCRC-G: fold the block address
    bool extendReadEdc = false;  ///< fold addr + WRT + CA parity
    bool cstc = false;           ///< protocol/timing checker

    std::string describe() const;

    static Protection none() { return {}; }
    static Protection baseline() { return {true, false, false, false}; }
    static Protection aiecc() { return {true, true, true, true}; }
};

/** A 32B-block address on the x32 channel. */
struct Address
{
    unsigned bank = 0; ///< 16 banks
    unsigned row = 0;  ///< 13 bits
    unsigned col = 0;  ///< block-granular (burst column / 8), 7 bits

    bool operator==(const Address &other) const = default;
    bool operator<(const Address &other) const
    {
        return pack() < other.pack();
    }

    uint32_t
    pack() const
    {
        return (static_cast<uint32_t>(bank) << 20) |
               (static_cast<uint32_t>(row) << 7) | col;
    }
    std::string toString() const;
};

/** Who detected an error. */
enum class Detector
{
    WriteEdc, ///< write-CRC mismatch reported over the EDC pin
    ReadEdc,  ///< read-CRC mismatch (data, address, WRT or parity)
    Cstc,     ///< protocol/timing violation
};

std::string detectorName(Detector detector);

/** One detection raised in the channel. */
struct Detection
{
    Detector by;
    Cycle when = 0;
    std::string detail;
};

/**
 * One GDDR5 device plus its controller, lock-stepped.
 */
class Gddr5System
{
  public:
    using Corruptor = std::function<void(uint64_t idx, PinWord &pins)>;

    explicit Gddr5System(const Protection &prot,
                         uint64_t seed = 0x6DD25);

    void setPinCorruptor(Corruptor corruptor);

    // Command interface (controller side).
    void act(unsigned bank, unsigned row);
    void wr(const Address &addr, const BitVec &data);
    /** Read 256 bits; detections are recorded on the way. */
    BitVec rd(const Address &addr);
    void pre(unsigned bank);
    void preAll();
    void nop();

    const std::vector<Detection> &detections() const { return events; }
    void clearDetections() { events.clear(); }

    /** Recovery hooks mirroring the DDR4 controller's. */
    void resyncWrt() { ctrlWrt = devWrt; ctrlLastParity = devLastParity; }

    // Golden-state access.
    Burst peek(const Address &addr) const;
    std::vector<Address> storedAddresses() const;
    bool modeCorrupted() const { return modeCorrupt; }
    uint64_t commandsIssued() const { return cmdIndex; }

    const Protection &protection() const { return prot; }

  private:
    Protection prot;
    Cstc cstc;       ///< reused DDR4 checker with GDDR5 timing
    Rng garbage;
    Corruptor corrupt;

    struct Bank
    {
        bool open = false;
        unsigned row = 0;
    };
    std::array<Bank, 16> banks{};
    std::map<uint32_t, Burst> store;

    Cycle cycle = 1000;
    uint64_t cmdIndex = 0;
    bool ctrlWrt = false, devWrt = false;
    bool ctrlLastParity = false, devLastParity = false;
    bool modeCorrupt = false;
    std::vector<Detection> events;

    /** Fold word for the extended read EDC. */
    static uint32_t
    readFold(uint32_t packedAddr, bool wrt, bool lastParity)
    {
        return packedAddr ^ (wrt ? 0x80000000u : 0) ^
               (lastParity ? 0x40000000u : 0);
    }

    Burst load(uint32_t packed) const;
    static Burst defaultFill(uint32_t packed);

    /** Transmit one edge; returns what the device latched. */
    Decoded transmit(const Command &cmd);

    /** Execute a latched command against bank state and storage. */
    void execute(const Decoded &dec, const Burst *wrBurst,
                 const EdcWord *wrEdc, Burst *rdBurst,
                 EdcWord *rdEdc);

    /** Map to the DDR4 command type for CSTC reuse. */
    static aiecc::Command toCstcCommand(const Command &cmd);
};

} // namespace gddr5
} // namespace aiecc

#endif // AIECC_GDDR5_SYSTEM_HH
