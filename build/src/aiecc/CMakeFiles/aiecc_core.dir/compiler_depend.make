# Empty compiler generated dependencies file for aiecc_core.
# This may be replaced when dependencies are built.
