/**
 * @file
 * A shortened Reed-Solomon codec over GF(2^8) with errors-and-erasures
 * decoding.
 *
 * This is the coding engine behind every chipkill ECC organization in
 * the repository: AMD chipkill uses RS(18,16), QPC Bamboo ECC uses
 * RS(72,64), and the eDECC variants extend those to RS(19,17) and
 * RS(76,68) by appending virtual address symbols (Section IV-A of the
 * AIECC paper).
 *
 * The hot path is allocation-free: callers hand the codec raw symbol
 * buffers plus a reusable RsWorkspace, and the codec runs against
 * tables precomputed at construction (per-root Horner multipliers for
 * syndromes, generator-scaled LFSR rows for parity).  The std::vector
 * API remains as a thin wrapper for tests and cold callers.
 */

#ifndef AIECC_RS_RS_CODE_HH
#define AIECC_RS_RS_CODE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gf/gf256.hh"
#include "gf/poly.hh"

namespace aiecc
{

/**
 * Scratch buffers for one decode: syndromes, the BM polynomials, the
 * error evaluator, and the Chien/Forney bookkeeping.  One instance
 * serves any RS(n, k) with n <= 255; codecs embed one per owner so the
 * steady-state decode path never touches the heap.  The buffers carry
 * no state between calls.
 */
struct RsWorkspace
{
    std::array<GfElem, 256> synd;    ///< S_j, nroots entries
    std::array<GfElem, 256> lambda;  ///< error locator, nroots+1
    std::array<GfElem, 256> bpoly;   ///< BM correction poly
    std::array<GfElem, 256> tpoly;   ///< BM temporary
    std::array<GfElem, 256> omega;   ///< error evaluator, nroots
    std::array<GfElem, 256> roots;   ///< located X^-1 values
    std::array<GfElem, 256> saved;   ///< pre-correction symbol values
    std::array<uint8_t, 256> chien;  ///< located codeword positions
    std::array<GfElem, 256> lane;    ///< batch de-interleave buffer
};

/**
 * Systematic shortened RS(n, k) codec over GF(2^8).
 *
 * Codewords are stored message-first: positions [0, k) carry the
 * message, positions [k, n) the parity.  Position 0 corresponds to the
 * highest-degree codeword-polynomial coefficient (the standard
 * transmission order), so shortening simply prepends implicit zero
 * symbols that are never transmitted.
 *
 * The decoder runs syndrome computation, errors-and-erasures
 * Berlekamp-Massey, Chien search, and Forney's algorithm.  It corrects
 * any pattern with 2 * numErrors + numErasures <= n - k and flags
 * heavier patterns as detected-uncorrectable unless they alias into a
 * different codeword (a miscorrection), which callers can measure by
 * comparing against the original codeword.
 */
class RsCodec
{
  public:
    /** Outcome of a decode attempt. */
    enum class Status
    {
        Ok,              ///< Syndromes were all zero: codeword accepted.
        Corrected,       ///< Errors were located and corrected.
        Uncorrectable,   ///< Detected, but beyond the correction power.
    };

    /** Everything the decoder learned about a received word. */
    struct Result
    {
        Status status = Status::Ok;
        /** Corrected codeword (valid for Ok/Corrected). */
        std::vector<GfElem> codeword;
        /** Codeword positions the decoder corrected. */
        std::vector<unsigned> positions;

        bool ok() const { return status != Status::Uncorrectable; }
    };

    /** Per-lane outcome of a batch decode. */
    struct LaneResult
    {
        Status status = Status::Ok;
        uint8_t numPositions = 0;
        /** Corrected positions, ascending; at most nroots() entries. */
        std::array<uint8_t, 8> positions{};
    };

    /** Widest batch the interleaved entry points accept. */
    static constexpr unsigned maxLanes = 4;

    /**
     * Build an RS(n, k) codec.
     *
     * @param n Codeword length in symbols, k < n <= 255.
     * @param k Message length in symbols.
     * @param fcr First consecutive root of the generator (default 1).
     */
    RsCodec(unsigned n, unsigned k, unsigned fcr = 1);

    unsigned n() const { return nLen; }
    unsigned k() const { return kLen; }
    /** Number of parity symbols (n - k). */
    unsigned nroots() const { return nLen - kLen; }
    /** Guaranteed symbol-error correction capability floor((n-k)/2). */
    unsigned t() const { return nroots() / 2; }

    // ---- Allocation-free entry points (the hot path) ----

    /**
     * Compute the n-k parity symbols of @p message (k symbols) into
     * @p parity via the table-driven LFSR; no heap traffic.
     */
    void parityInto(const GfElem *message, GfElem *parity) const;

    /** Systematic encode: @p codeword receives all n symbols. */
    void encodeInto(const GfElem *message, GfElem *codeword) const;

    /** True iff the n symbols at @p word have all-zero syndromes. */
    bool isCodewordRaw(const GfElem *word) const;

    /**
     * Decode @p received (n symbols) in place.
     *
     * On Ok/Corrected the buffer holds the corrected codeword; on
     * Uncorrectable it is restored to the received word.  Corrected
     * positions (ascending, nonzero magnitude only) are written to
     * @p positions (room for nroots() entries) with the count in
     * @p numPositions.
     *
     * @param erasures Known-suspect codeword positions (each < n),
     *                 or nullptr when there are none.
     */
    Status decodeInto(GfElem *received, RsWorkspace &ws,
                      uint8_t *positions, unsigned &numPositions,
                      const unsigned *erasures = nullptr,
                      unsigned numErasures = 0) const;

    // ---- Batched entry points (the 4 codewords of one MTB) ----
    //
    // Symbols are interleaved lane-minor: symbol i of lane c lives at
    // buf[i * lanes + c], matching how the AMD organizations gather
    // one chip's four codeword symbols in one touch.

    /**
     * Compute parity for @p lanes interleaved messages at once.
     *
     * @param messages k * lanes symbols, interleaved.
     * @param parities nroots() * lanes symbols out, interleaved.
     */
    void parityBatch(const GfElem *messages, GfElem *parities,
                     unsigned lanes) const;

    /**
     * Decode @p lanes interleaved received words in place.
     *
     * Syndromes for every lane are computed in one interleaved sweep;
     * clean lanes finish there, dirty lanes fall back to the scalar
     * decoder.  Per-lane status/positions land in @p results.
     */
    void decodeBatch(GfElem *received, unsigned lanes,
                     LaneResult *results, RsWorkspace &ws) const;

    // ---- std::vector wrappers (tests and cold callers) ----

    /**
     * Systematically encode @p message.
     *
     * @param message Exactly k symbols.
     * @return The n-symbol codeword, message-first.
     */
    std::vector<GfElem> encode(const std::vector<GfElem> &message) const;

    /** Compute only the n-k parity symbols of @p message. */
    std::vector<GfElem>
    parity(const std::vector<GfElem> &message) const;

    /** True iff @p word (n symbols) has all-zero syndromes. */
    bool isCodeword(const std::vector<GfElem> &word) const;

    /**
     * Decode a received word.
     *
     * @param received Exactly n symbols.
     * @param erasures Known-suspect codeword positions (each < n).
     * @return Decode status, corrected word and error positions.
     */
    Result decode(const std::vector<GfElem> &received,
                  const std::vector<unsigned> &erasures = {}) const;

  private:
    unsigned nLen;
    unsigned kLen;
    unsigned fcrBase;

    /**
     * Generator coefficients, low-degree-first; genCoef[nroots] == 1.
     * Kept for the encode-table builder and for reference.
     */
    std::vector<GfElem> genCoef;

    /**
     * LFSR rows: encTab[fb * nroots + m] = fb * genCoef[nroots-1-m],
     * one 256-entry row per feedback symbol, laid out so the shift
     * update walks a contiguous row.
     */
    std::vector<GfElem> encTab;

    /**
     * Per-root Horner multipliers: syndTab[j * 256 + a] =
     * a * alpha^(fcr+j), turning each syndrome step into one table
     * load and one XOR.
     */
    std::vector<GfElem> syndTab;

    /** xinvTab[pos] = alpha^-(n-1-pos), the Chien probe per position. */
    std::vector<GfElem> xinvTab;

    /** xlTab[pos] = alpha^(n-1-pos), the erasure locator per position. */
    std::vector<GfElem> xlTab;

    /** Syndromes into ws.synd; true if all zero. */
    bool syndromesInto(const GfElem *received, GfElem *synd) const;
};

} // namespace aiecc

#endif // AIECC_RS_RS_CODE_HH
