file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_system.dir/bench_fig9_system.cc.o"
  "CMakeFiles/bench_fig9_system.dir/bench_fig9_system.cc.o.d"
  "bench_fig9_system"
  "bench_fig9_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
