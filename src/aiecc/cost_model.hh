/**
 * @file
 * Cost-model derivation: turn a Mechanisms configuration into the
 * obs::CostModel parameter set the CostAccountant charges from.
 *
 * The parameters follow the Ramulator2 ECC-plugin convention of
 * modeled nanoseconds per protected byte (encode 0.02 ns/B, CRC
 * 0.01 ns/B), expressed here in integer picoseconds so attribution
 * and sharded merges stay exact; bus quantities come straight from
 * the DDR4 burst geometry (ddr4/burst.hh) and the JEDEC write-CRC
 * burst extension.  DESIGN.md §11 documents every constant.
 */

#ifndef AIECC_AIECC_COST_MODEL_HH
#define AIECC_AIECC_COST_MODEL_HH

#include "aiecc/mechanisms.hh"
#include "obs/cost.hh"

namespace aiecc
{

/**
 * Derive the per-level cost parameters of one mechanism set.
 *
 * A pure function of the configuration: two calls with equal
 * Mechanisms produce operator==-equal models, which is what lets
 * sharded accountants assert model equality at merge time.
 */
obs::CostModel makeCostModel(const Mechanisms &mech);

} // namespace aiecc

#endif // AIECC_AIECC_COST_MODEL_HH
