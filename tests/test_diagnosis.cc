/**
 * @file
 * Unit tests for precise address-error diagnosis (Section IV-F).
 */

#include <gtest/gtest.h>

#include "aiecc/diagnosis.hh"

namespace aiecc
{
namespace
{

TEST(Diagnosis, AgreementIsClean)
{
    const auto d = diagnoseAddress(0x12345678, 0x12345678);
    EXPECT_FALSE(d.faulty());
    EXPECT_TRUE(d.faultyBits.empty());
    EXPECT_TRUE(d.suspectPins.empty());
    EXPECT_NE(d.toString().find("agree"), std::string::npos);
}

TEST(Diagnosis, ColumnBitMapsToColumnPin)
{
    Geometry geom;
    MtbAddress a{0, 1, 2, 100, 5};
    MtbAddress b = a;
    b.col = 5 ^ 1; // MTB column bit 0 <-> burst A3
    const auto d = diagnoseAddress(a.pack(geom), b.pack(geom), geom);
    ASSERT_EQ(d.faultyBits.size(), 1u);
    EXPECT_EQ(d.faultyBits[0], 0u);
    ASSERT_EQ(d.suspectPins.size(), 1u);
    EXPECT_EQ(d.suspectPins[0], Pin::A3);
}

TEST(Diagnosis, RowBitMapsToActTimePin)
{
    Geometry geom;
    MtbAddress a{0, 0, 0, 0, 0};
    MtbAddress b = a;
    b.row = 1u << 16; // row bit 16 rides RAS/A16 during ACT
    const auto d = diagnoseAddress(a.pack(geom), b.pack(geom), geom);
    ASSERT_EQ(d.suspectPins.size(), 1u);
    EXPECT_EQ(d.suspectPins[0], Pin::RAS_A16);

    b.row = 1u << 14;
    const auto d2 = diagnoseAddress(a.pack(geom), b.pack(geom), geom);
    EXPECT_EQ(d2.suspectPins[0], Pin::WE_A14);

    b.row = 1u << 12; // row bit 12 rides the A12/BC pin
    const auto d3 = diagnoseAddress(a.pack(geom), b.pack(geom), geom);
    EXPECT_EQ(d3.suspectPins[0], Pin::A12_BC);
}

TEST(Diagnosis, BankBitsMapToBankPins)
{
    Geometry geom;
    MtbAddress a{0, 0, 0, 0, 0};
    MtbAddress b = a;
    b.ba = 1;
    EXPECT_EQ(diagnoseAddress(a.pack(geom), b.pack(geom), geom)
                  .suspectPins[0],
              Pin::BA0);
    b.ba = 2;
    EXPECT_EQ(diagnoseAddress(a.pack(geom), b.pack(geom), geom)
                  .suspectPins[0],
              Pin::BA1);
    b.ba = 0;
    b.bg = 2;
    EXPECT_EQ(diagnoseAddress(a.pack(geom), b.pack(geom), geom)
                  .suspectPins[0],
              Pin::BG1);
}

TEST(Diagnosis, RankBitsMapToChipSelect)
{
    Geometry geom;
    MtbAddress a{0, 0, 0, 0, 0};
    MtbAddress b = a;
    b.rank = 1;
    const auto d = diagnoseAddress(a.pack(geom), b.pack(geom), geom);
    ASSERT_EQ(d.suspectPins.size(), 1u);
    EXPECT_EQ(d.suspectPins[0], Pin::CS);
}

TEST(Diagnosis, MultiBitErrorsListEveryPinOnce)
{
    Geometry geom;
    MtbAddress a{0, 0, 0, 0x00000, 0};
    MtbAddress b{0, 0, 0, 0x00003, 1}; // row bits 0,1 + col bit 0
    const auto d = diagnoseAddress(a.pack(geom), b.pack(geom), geom);
    EXPECT_EQ(d.faultyBits.size(), 3u);
    EXPECT_EQ(d.suspectPins.size(), 3u);
    // A0, A1 for the row bits; A3 for the MTB column bit.
    EXPECT_NE(std::find(d.suspectPins.begin(), d.suspectPins.end(),
                        Pin::A0),
              d.suspectPins.end());
    EXPECT_NE(std::find(d.suspectPins.begin(), d.suspectPins.end(),
                        Pin::A1),
              d.suspectPins.end());
    EXPECT_NE(std::find(d.suspectPins.begin(), d.suspectPins.end(),
                        Pin::A3),
              d.suspectPins.end());
}

TEST(Diagnosis, ToStringNamesPins)
{
    Geometry geom;
    MtbAddress a{0, 0, 0, 0, 0};
    MtbAddress b = a;
    b.row = 1u << 17;
    const auto d = diagnoseAddress(a.pack(geom), b.pack(geom), geom);
    EXPECT_NE(d.toString().find("A17"), std::string::npos);
}

} // namespace
} // namespace aiecc
