#include "gddr5/campaign.hh"

#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace aiecc
{
namespace gddr5
{

namespace
{

constexpr unsigned targetBank = 5;
constexpr unsigned rowA = 0x2A;
constexpr unsigned rowT = 0x15;
constexpr unsigned col1 = 2;
constexpr unsigned col2 = 5;

BitVec
payload(uint64_t tag)
{
    Rng rng(0x6DA7AULL ^ tag);
    BitVec d(Burst::dataBits);
    for (size_t i = 0; i < d.size(); i += 64)
        d.setField(i, 64, rng.next());
    return d;
}

uint64_t
tagOf(const Address &addr)
{
    return addr.pack();
}

/** Open every bank at rowA with data; plant rowT data too. */
void
setup(Gddr5System &sys, Pattern pattern)
{
    for (unsigned bank = 0; bank < 16; ++bank) {
        sys.act(bank, rowT);
        sys.wr({bank, rowT, col1}, payload(tagOf({bank, rowT, col1})));
        sys.pre(bank);
        sys.act(bank, rowA);
        sys.wr({bank, rowA, col1}, payload(tagOf({bank, rowA, col1})));
        sys.wr({bank, rowA, col2}, payload(tagOf({bank, rowA, col2})));
    }
    if (pattern == Pattern::ActWr || pattern == Pattern::ActRd)
        sys.pre(targetBank);
}

struct ReadLog
{
    std::vector<BitVec> data;
    std::vector<bool> flagged;
    /** Detections already raised when this read was consumed. */
    std::vector<size_t> detectionsBefore;
};

void
readBack(Gddr5System &sys, const Address &addr, ReadLog *log)
{
    const size_t before = sys.detections().size();
    const BitVec d = sys.rd(addr);
    if (log) {
        log->data.push_back(d);
        log->flagged.push_back(sys.detections().size() > before);
        log->detectionsBefore.push_back(before);
    }
}

void
runPattern(Gddr5System &sys, Pattern pattern, ReadLog *log)
{
    switch (pattern) {
      case Pattern::ActWr:
        sys.act(targetBank, rowT);
        sys.wr({targetBank, rowT, col1}, payload(0xF2E5D));
        break;
      case Pattern::ActRd:
        sys.act(targetBank, rowT);
        readBack(sys, {targetBank, rowT, col1}, log);
        break;
      case Pattern::Wr:
        sys.wr({targetBank, rowA, col1}, payload(0xF2E5D));
        break;
      case Pattern::Rd:
        readBack(sys, {targetBank, rowA, col1}, log);
        break;
      case Pattern::Pre:
        sys.pre(targetBank);
        sys.act(targetBank, rowT);
        readBack(sys, {targetBank, rowT, col1}, log);
        break;
    }
}

void
runVerify(Gddr5System &sys, ReadLog *log)
{
    for (unsigned bank = 0; bank < 16; ++bank) {
        sys.pre(bank);
        sys.act(bank, rowA);
        readBack(sys, {bank, rowA, col1}, log);
        readBack(sys, {bank, rowA, col2}, log);
        sys.pre(bank);
        sys.act(bank, rowT);
        readBack(sys, {bank, rowT, col1}, log);
    }
}

void
restore(Gddr5System &sys, Pattern pattern)
{
    sys.resyncWrt();
    sys.preAll();
    for (unsigned bank = 0; bank < 16; ++bank)
        sys.act(bank, rowA);
    if (pattern == Pattern::ActWr || pattern == Pattern::ActRd)
        sys.pre(targetBank);
}

} // namespace

std::vector<Pattern>
allGddr5Patterns()
{
    return {Pattern::ActWr, Pattern::ActRd, Pattern::Wr, Pattern::Rd,
            Pattern::Pre};
}

std::string
gddr5PatternName(Pattern pattern)
{
    switch (pattern) {
      case Pattern::ActWr: return "ACT+WR";
      case Pattern::ActRd: return "ACT+RD";
      case Pattern::Wr: return "WR";
      case Pattern::Rd: return "RD";
      case Pattern::Pre: return "PRE";
    }
    return "?";
}

std::vector<Pin>
gddr5InjectablePins()
{
    std::vector<Pin> pins;
    for (unsigned i = 0; i < numCaPins; ++i)
        pins.push_back(static_cast<Pin>(i));
    return pins;
}

void
Gddr5Stats::add(const Gddr5Trial &trial)
{
    ++trials;
    detected += trial.detected;
    switch (trial.outcome) {
      case Outcome::NoEffect: ++noEffect; break;
      case Outcome::Corrected: ++corrected; break;
      case Outcome::Due: ++due; break;
      case Outcome::Sdc: ++sdc; break;
      case Outcome::Mdc: ++mdc; break;
      case Outcome::SdcMdc:
        ++sdc;
        ++mdc;
        ++both;
        break;
    }
}

void
Gddr5Stats::merge(const Gddr5Stats &other)
{
    trials += other.trials;
    detected += other.detected;
    noEffect += other.noEffect;
    corrected += other.corrected;
    due += other.due;
    sdc += other.sdc;
    mdc += other.mdc;
    both += other.both;
}

std::string
Gddr5Stats::serializeState() const
{
    std::ostringstream out;
    out << "counts " << trials << ' ' << detected << ' ' << noEffect
        << ' ' << corrected << ' ' << due << ' ' << sdc << ' ' << mdc
        << ' ' << both << '\n';
    return out.str();
}

void
Gddr5Stats::deserializeState(const std::string &text)
{
    std::istringstream in(text);
    std::string tag;
    Gddr5Stats fresh;
    in >> tag >> fresh.trials >> fresh.detected >> fresh.noEffect >>
        fresh.corrected >> fresh.due >> fresh.sdc >> fresh.mdc >>
        fresh.both;
    AIECC_ASSERT(in && tag == "counts",
                 "gddr5 stats state: expected 'counts' line");
    *this = fresh;
}

Gddr5Campaign::Gddr5Campaign(const Protection &prot, uint64_t seed)
    : prot(prot), seed(seed)
{
}

Gddr5Trial
Gddr5Campaign::runTrial(Pattern pattern, const Gddr5Error &error) const
{
    const uint64_t runSeed =
        seed ^ (static_cast<uint64_t>(pattern) << 48) ^ error.noiseSeed;

    // Golden.
    Gddr5System golden(prot, runSeed);
    ReadLog goldenLog;
    setup(golden, pattern);
    runPattern(golden, pattern, &goldenLog);
    golden.nop();
    runVerify(golden, &goldenLog);
    AIECC_ASSERT(golden.detections().empty(),
                 "GDDR5 golden run raised detections under "
                     << prot.describe());

    // Faulty.
    Gddr5System faulty(prot, runSeed);
    setup(faulty, pattern);
    faulty.clearDetections();
    const uint64_t targetIdx = faulty.commandsIssued();
    const Gddr5Error err = error;
    faulty.setPinCorruptor([targetIdx, err](uint64_t idx,
                                            PinWord &pins) {
        if (idx != targetIdx)
            return;
        if (err.allPin) {
            Rng noise(0x6A11ULL ^ err.noiseSeed);
            for (unsigned p = 0; p < numCaPins; ++p)
                pins.set(static_cast<Pin>(p), noise.chance(0.5));
        } else {
            for (Pin pin : err.flips)
                pins.flip(pin);
        }
    });

    ReadLog firstPass;
    runPattern(faulty, pattern, &firstPass);
    faulty.nop();
    runVerify(faulty, &firstPass);

    Gddr5Trial trial;
    for (const auto &d : faulty.detections()) {
        trial.detected = true;
        trial.detectors.push_back(d.by);
    }

    // Wrong data consumed before anything fired => SDC (the `when`
    // proxy stores the number of detections visible at read time).
    bool sdcEarly = false;
    AIECC_ASSERT(firstPass.data.size() == goldenLog.data.size(),
                 "GDDR5 read-sequence mismatch");
    for (size_t i = 0; i < firstPass.data.size(); ++i) {
        if (!firstPass.flagged[i] && firstPass.detectionsBefore[i] == 0 &&
            firstPass.data[i] != goldenLog.data[i]) {
            sdcEarly = true;
        }
    }

    // Retry on detection.
    ReadLog finalPass = firstPass;
    if (trial.detected) {
        faulty.setPinCorruptor({});
        restore(faulty, pattern);
        finalPass = ReadLog{};
        runPattern(faulty, pattern, &finalPass);
        faulty.nop();
        runVerify(faulty, &finalPass);
    }

    bool residual = false;
    bool silentLate = false;
    for (size_t i = 0; i < finalPass.data.size(); ++i) {
        if (finalPass.flagged[i]) {
            residual = true;
            continue;
        }
        if (finalPass.data[i] != goldenLog.data[i]) {
            residual = true;
            if (!trial.detected)
                silentLate = true;
        }
    }

    bool mdc = faulty.modeCorrupted();
    auto keys = faulty.storedAddresses();
    for (const auto &addr : golden.storedAddresses())
        keys.push_back(addr);
    for (const auto &addr : keys) {
        if (faulty.peek(addr) != golden.peek(addr)) {
            mdc = true;
            break;
        }
    }

    const bool sdc = sdcEarly || silentLate;
    if (sdc || (!trial.detected && mdc)) {
        trial.outcome = sdc && mdc ? Outcome::SdcMdc
                                   : (sdc ? Outcome::Sdc : Outcome::Mdc);
    } else if (!trial.detected) {
        trial.outcome = Outcome::NoEffect;
    } else {
        trial.outcome =
            (residual || mdc) ? Outcome::Due : Outcome::Corrected;
    }
    return trial;
}

namespace
{

/** Lineage terminal for a classified GDDR5 trial.  A Corrected trial
 * got there through the explicit golden-restore retry pass, i.e. it
 * was *recovered*, not corrected in place. */
obs::FaultTerminal
gddr5Terminal(const Gddr5Trial &trial)
{
    switch (trial.outcome) {
      case Outcome::NoEffect: return obs::FaultTerminal::Masked;
      case Outcome::Corrected: return obs::FaultTerminal::Recovered;
      case Outcome::Due: return obs::FaultTerminal::Detected;
      case Outcome::Sdc:
      case Outcome::Mdc:
      case Outcome::SdcMdc: return obs::FaultTerminal::Escaped;
    }
    return obs::FaultTerminal::Escaped;
}

std::string
gddr5Site(Pattern pattern, const Gddr5Error &error)
{
    std::ostringstream out;
    out << gddr5PatternName(pattern) << "/";
    if (error.allPin) {
        out << "all-pin";
    } else {
        for (size_t i = 0; i < error.flips.size(); ++i)
            out << (i ? "+" : "") << pinName(error.flips[i]);
    }
    return out.str();
}

} // namespace

std::vector<Gddr5Trial>
Gddr5Campaign::runTrials(Pattern pattern,
                         const std::vector<Gddr5Error> &errors,
                         unsigned jobs) const
{
    // Small shards keep the pool busy through the tail; the size is
    // not output-affecting (every trial is a pure function of
    // (pattern, error, seed)).
    constexpr uint64_t shardSize = trialShardSize;
    const uint64_t total = errors.size();
    const uint64_t shards = shardCount(total, shardSize);
    std::vector<Gddr5Trial> results(total);

    // Single-threaded prologue: claim this batch's global trial
    // numbers before any shard runs, so fault IDs depend only on the
    // call sequence, never on worker interleaving.
    const uint64_t indexBase = trialCounter;
    trialCounter += total;
    const uint64_t salt =
        seed ^ obs::lineageHash("gddr5:" + prot.describe());
    std::vector<std::unique_ptr<obs::LineageLedger>> shardLedgers(shards);

    runShards(shards, jobs, [&](uint64_t shard) {
        const uint64_t begin = shard * shardSize;
        const uint64_t n = shardLength(total, shardSize, shard);
        obs::LineageLedger *shardLedger = nullptr;
        if (ledger) {
            shardLedgers[shard] = std::unique_ptr<obs::LineageLedger>(
                new obs::LineageLedger);
            shardLedger = shardLedgers[shard].get();
        }
        for (uint64_t i = 0; i < n; ++i) {
            const Gddr5Error &error = errors[begin + i];
            const Gddr5Trial trial = runTrial(pattern, error);
            results[begin + i] = trial;
            if (!shardLedger)
                continue;
            const uint64_t faultId = obs::deriveFaultId(
                salt, static_cast<uint64_t>(pattern),
                indexBase + begin + i);
            shardLedger->recordInjection(faultId, obs::FaultKind::Ccca,
                                         gddr5Site(pattern, error));
            std::string mech;
            if (!trial.detectors.empty())
                mech = detectorName(trial.detectors.front());
            shardLedger->resolve(
                faultId, gddr5Terminal(trial), mech,
                static_cast<uint32_t>(trial.detectors.size()),
                trial.detected ? 1u : 0u);
        }
    });

    for (uint64_t shard = 0; shard < shards; ++shard) {
        if (shardLedgers[shard])
            ledger->merge(*shardLedgers[shard]);
    }
    return results;
}

RunStatus
Gddr5Campaign::runTrialsCheckpointed(
    Pattern pattern, const std::vector<Gddr5Error> &errors,
    unsigned jobs, uint64_t batchShards, uint64_t &nextShard,
    const std::function<void(uint64_t, const Gddr5Trial &)> &onResult,
    const std::function<void(uint64_t, uint64_t)> &commit) const
{
    // Inner shard size matches runTrials(), so the decomposition and
    // every derived fault ID are identical to the plain sweep's.
    constexpr uint64_t shardSize = trialShardSize;
    const uint64_t total = errors.size();
    const uint64_t shards = shardCount(total, shardSize);

    const uint64_t indexBase = trialCounter;
    const uint64_t salt =
        seed ^ obs::lineageHash("gddr5:" + prot.describe());

    std::vector<std::vector<Gddr5Trial>> shardResults(shards);
    std::vector<std::unique_ptr<obs::LineageLedger>> shardLedgers(shards);

    const RunStatus status = runShardsCheckpointed(
        shards, batchShards, jobs, nextShard,
        [&](uint64_t shard) {
            const uint64_t begin = shard * shardSize;
            const uint64_t n = shardLength(total, shardSize, shard);
            obs::LineageLedger *shardLedger = nullptr;
            if (ledger) {
                shardLedgers[shard] =
                    std::unique_ptr<obs::LineageLedger>(
                        new obs::LineageLedger);
                shardLedger = shardLedgers[shard].get();
            }
            shardResults[shard].resize(n);
            for (uint64_t i = 0; i < n; ++i) {
                const Gddr5Error &error = errors[begin + i];
                const Gddr5Trial trial = runTrial(pattern, error);
                shardResults[shard][i] = trial;
                if (!shardLedger)
                    continue;
                const uint64_t faultId = obs::deriveFaultId(
                    salt, static_cast<uint64_t>(pattern),
                    indexBase + begin + i);
                shardLedger->recordInjection(
                    faultId, obs::FaultKind::Ccca,
                    gddr5Site(pattern, error));
                std::string mech;
                if (!trial.detectors.empty())
                    mech = detectorName(trial.detectors.front());
                shardLedger->resolve(
                    faultId, gddr5Terminal(trial), mech,
                    static_cast<uint32_t>(trial.detectors.size()),
                    trial.detected ? 1u : 0u);
            }
        },
        [&](uint64_t batchBegin, uint64_t batchEnd) {
            for (uint64_t shard = batchBegin; shard < batchEnd;
                 ++shard) {
                if (shardLedgers[shard]) {
                    ledger->merge(*shardLedgers[shard]);
                    shardLedgers[shard].reset();
                }
                const uint64_t begin = shard * shardSize;
                for (uint64_t i = 0; i < shardResults[shard].size();
                     ++i) {
                    onResult(begin + i, shardResults[shard][i]);
                }
                shardResults[shard].clear();
                shardResults[shard].shrink_to_fit();
            }
            commit(batchBegin, batchEnd);
        });

    if (status == RunStatus::Completed)
        trialCounter = indexBase + total;
    return status;
}

Gddr5Stats
Gddr5Campaign::sweepOnePin(Pattern pattern, unsigned jobs) const
{
    std::vector<Gddr5Error> errors;
    for (Pin pin : gddr5InjectablePins())
        errors.push_back(Gddr5Error::onePin(pin));
    Gddr5Stats stats;
    for (const Gddr5Trial &trial : runTrials(pattern, errors, jobs))
        stats.add(trial);
    return stats;
}

Gddr5Stats
Gddr5Campaign::sweepAllPin(Pattern pattern, unsigned samples,
                           unsigned jobs) const
{
    std::vector<Gddr5Error> errors;
    for (unsigned s = 0; s < samples; ++s)
        errors.push_back(Gddr5Error::allPins(s + 1));
    Gddr5Stats stats;
    for (const Gddr5Trial &trial : runTrials(pattern, errors, jobs))
        stats.add(trial);
    return stats;
}

} // namespace gddr5
} // namespace aiecc
