# Empty dependencies file for ber_storm.
# This may be replaced when dependencies are built.
