/**
 * @file
 * Tests for the shard-parallel execution primitives: the fixed-size
 * shard decomposition arithmetic, the worker-count resolution, and
 * the runShards() contract (every index exactly once, inline index
 * order at one worker, full coverage under contention).
 */

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"

namespace aiecc
{
namespace
{

// ---- shardCount / shardLength arithmetic ----

TEST(ShardMath, ExactMultiple)
{
    EXPECT_EQ(shardCount(1000, 100), 10u);
    for (uint64_t s = 0; s < 10; ++s)
        EXPECT_EQ(shardLength(1000, 100, s), 100u) << s;
    EXPECT_EQ(shardLength(1000, 100, 10), 0u); // past the end
}

TEST(ShardMath, ShortFinalShard)
{
    EXPECT_EQ(shardCount(1001, 100), 11u);
    EXPECT_EQ(shardLength(1001, 100, 9), 100u);
    EXPECT_EQ(shardLength(1001, 100, 10), 1u);
    EXPECT_EQ(shardCount(99, 100), 1u);
    EXPECT_EQ(shardLength(99, 100, 0), 99u);
}

TEST(ShardMath, ZeroTotalHasNoShards)
{
    EXPECT_EQ(shardCount(0, 100), 0u);
    EXPECT_EQ(shardLength(0, 100, 0), 0u);
}

TEST(ShardMath, ZeroShardSizeDegradesToOneShard)
{
    // A defensive guard, not a supported configuration: everything
    // lands in one shard instead of dividing by zero.
    EXPECT_EQ(shardCount(42, 0), 1u);
    EXPECT_EQ(shardCount(0, 0), 0u);
}

TEST(ShardMath, LengthsSumToTotal)
{
    for (uint64_t total : {0ull, 1ull, 7ull, 100ull, 1001ull, 4096ull}) {
        for (uint64_t size : {1ull, 3ull, 100ull, 5000ull}) {
            uint64_t sum = 0;
            const uint64_t shards = shardCount(total, size);
            for (uint64_t s = 0; s < shards; ++s) {
                const uint64_t len = shardLength(total, size, s);
                EXPECT_GE(len, 1u) << "empty shard " << s << " of "
                                   << shards;
                sum += len;
            }
            EXPECT_EQ(sum, total) << total << "/" << size;
        }
    }
}

TEST(ShardMath, OverflowSafeNearUint64Max)
{
    // The naive `(total + size - 1) / size` wraps for totals near
    // 2^64 and reports ~0 shards; the exhaustive campaigns feed
    // billion-scale spaces through here, so the arithmetic must hold
    // over the whole domain.
    const uint64_t max = ~static_cast<uint64_t>(0);
    EXPECT_EQ(shardCount(max, 1), max);
    EXPECT_EQ(shardCount(max, max), 1u);
    EXPECT_EQ(shardLength(max, max, 0), max);
    // 2^64 - 1 is divisible by 3 (2^64 ≡ 1 mod 3): exact tiling.
    EXPECT_EQ(shardCount(max, 3), max / 3);
    EXPECT_EQ(shardLength(max, 3, max / 3 - 1), 3u);
    EXPECT_EQ(shardLength(max, 3, max / 3), 0u);
    // 2^64 - 1 ≡ 1 mod 7: one short final shard past the division.
    EXPECT_EQ(shardCount(max, 7), max / 7 + 1);
    EXPECT_EQ(shardLength(max, 7, max / 7), 1u);
    EXPECT_EQ(shardCount(max - 1, max), 1u);
    EXPECT_EQ(shardLength(max - 1, max, 0), max - 1);
}

TEST(ShardMath, HugeIndexCannotWrapIntoPhantomShard)
{
    // index * shardSize used to be formed before the range check;
    // 2^33 * 2^32 wraps to 0 and resurrected shard 0's length.
    const uint64_t total = 1ull << 63;
    const uint64_t size = 1ull << 32;
    const uint64_t shards = shardCount(total, size);
    EXPECT_EQ(shards, 1ull << 31);
    EXPECT_EQ(shardLength(total, size, shards - 1), size);
    EXPECT_EQ(shardLength(total, size, shards), 0u);
    EXPECT_EQ(shardLength(total, size, 1ull << 33), 0u);
    EXPECT_EQ(shardLength(total, size, ~static_cast<uint64_t>(0)), 0u);
}

TEST(ShardMath, ExtremeLengthsStillSumToTotal)
{
    // Totals straddling the old overflow boundary, odd shard sizes:
    // the shard set must still tile the range exactly.
    const uint64_t max = ~static_cast<uint64_t>(0);
    for (uint64_t total : {max, max - 1, max / 2 + 3}) {
        for (uint64_t size : {max, max / 2, max / 3 + 7}) {
            const uint64_t shards = shardCount(total, size);
            uint64_t sum = 0;
            for (uint64_t s = 0; s < shards; ++s)
                sum += shardLength(total, size, s);
            EXPECT_EQ(sum, total) << total << "/" << size;
        }
    }
}

// ---- worker-count resolution ----

TEST(ResolveJobs, ZeroMeansHardwareAuto)
{
    EXPECT_EQ(resolveJobs(0), hardwareJobs());
    EXPECT_GE(hardwareJobs(), 1u);
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);
}

// ---- runShards ----

TEST(RunShards, SingleWorkerRunsInlineInOrder)
{
    std::vector<uint64_t> order;
    runShards(8, 1, [&](uint64_t shard) { order.push_back(shard); });
    ASSERT_EQ(order.size(), 8u);
    for (uint64_t s = 0; s < 8; ++s)
        EXPECT_EQ(order[s], s);
}

TEST(RunShards, EveryShardExactlyOnceUnderContention)
{
    constexpr uint64_t shards = 200;
    std::vector<std::atomic<unsigned>> hits(shards);
    runShards(shards, 8, [&](uint64_t shard) {
        hits[shard].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint64_t s = 0; s < shards; ++s)
        EXPECT_EQ(hits[s].load(), 1u) << "shard " << s;
}

TEST(RunShards, MoreJobsThanShards)
{
    std::vector<std::atomic<unsigned>> hits(3);
    runShards(3, 16, [&](uint64_t shard) {
        hits[shard].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint64_t s = 0; s < 3; ++s)
        EXPECT_EQ(hits[s].load(), 1u);
}

TEST(RunShards, ZeroShardsNeverInvokes)
{
    bool invoked = false;
    runShards(0, 4, [&](uint64_t) { invoked = true; });
    EXPECT_FALSE(invoked);
}

TEST(RunShards, SlotWritesAreVisibleAfterJoin)
{
    // The canonical usage: each shard fills its own output slot; the
    // join must publish every write to the caller.
    constexpr uint64_t shards = 64;
    std::vector<uint64_t> slots(shards, 0);
    runShards(shards, 4,
              [&](uint64_t shard) { slots[shard] = shard * shard + 1; });
    for (uint64_t s = 0; s < shards; ++s)
        EXPECT_EQ(slots[s], s * s + 1) << s;
}

} // namespace
} // namespace aiecc
