/**
 * @file
 * `aiecc-trace` — offline analysis of recorded JSONL event traces.
 *
 * Every simulation surface that attaches a JsonlTraceSink (campaign
 * drivers, bench_e2e_throughput --trace, examples) writes the same
 * flat one-object-per-line schema; this CLI consumes those files:
 *
 *   aiecc-trace summary FILE...            per-kind counts, rates and
 *                                          inter-event gap statistics
 *   aiecc-trace filter [PRED...] FILE...   re-emit matching events as
 *                                          JSONL on stdout
 *   aiecc-trace export --chrome [-o OUT] FILE...
 *                                          Chrome trace-event JSON
 *                                          (chrome://tracing, Perfetto)
 *                                          with recovery episodes as
 *                                          duration spans
 *
 * Filter predicates: --kind NAME, --label TEXT, --cycle-min N,
 * --cycle-max N.  Multiple input files are concatenated in argument
 * order.  Exit status: 0 success, 1 file/IO error, 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/trace.hh"
#include "obs/trace_reader.hh"

namespace
{

using namespace aiecc;

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: aiecc-trace <command> [options] FILE...\n"
        "\n"
        "commands:\n"
        "  summary   per-kind event counts, rates per kilocycle, and\n"
        "            inter-event gap statistics\n"
        "  filter    print events matching every predicate as JSONL\n"
        "  export    convert to another format (requires --chrome)\n"
        "\n"
        "filter predicates:\n"
        "  --kind NAME     event kind (command, detection, retry, ...)\n"
        "  --label TEXT    exact label match\n"
        "  --cycle-min N   keep events at cycle >= N\n"
        "  --cycle-max N   keep events at cycle <= N\n"
        "\n"
        "export options:\n"
        "  --chrome        Chrome trace-event JSON (Perfetto-loadable)\n"
        "  -o, --out PATH  write to PATH instead of stdout\n");
    std::fprintf(to, "\nknown kinds:");
    for (unsigned k = 0; k < obs::numEventKinds; ++k) {
        std::fprintf(to, " %s",
                     obs::eventKindName(
                         static_cast<obs::EventKind>(k))
                         .c_str());
    }
    std::fprintf(to, "\n");
}

/** Load and concatenate every input file; exits on unreadable files. */
std::vector<obs::TraceEvent>
loadAll(const std::vector<std::string> &paths)
{
    std::vector<obs::TraceEvent> events;
    for (const std::string &path : paths) {
        obs::TraceFile tf = obs::readTraceFile(path);
        if (!tf.opened) {
            std::fprintf(stderr, "aiecc-trace: cannot read %s\n",
                         path.c_str());
            std::exit(1);
        }
        if (tf.badLines) {
            std::fprintf(stderr,
                         "aiecc-trace: %s: %llu malformed line(s) "
                         "skipped (first: %s)\n",
                         path.c_str(),
                         static_cast<unsigned long long>(tf.badLines),
                         tf.firstError.c_str());
        }
        if (tf.truncatedTail) {
            std::fprintf(stderr,
                         "aiecc-trace: %s: truncated final record "
                         "dropped (writer stopped mid-write?)\n",
                         path.c_str());
        }
        events.insert(events.end(), tf.events.begin(), tf.events.end());
    }
    return events;
}

int
cmdSummary(const std::vector<std::string> &paths)
{
    const std::vector<obs::TraceEvent> events = loadAll(paths);
    const obs::TraceSummary sum = obs::summarizeTrace(events);

    std::printf("%llu events over cycles [%llu, %llu]\n\n",
                static_cast<unsigned long long>(sum.totalEvents),
                static_cast<unsigned long long>(sum.firstCycle),
                static_cast<unsigned long long>(sum.lastCycle));
    std::printf("%-16s %10s %12s %12s %12s %12s\n", "kind", "count",
                "per-kcycle", "gap-mean", "gap-p50", "gap-p99");
    for (const auto &[kind, ks] : sum.byKind) {
        std::printf("%-16s %10llu %12.3f %12.1f %12.1f %12.1f\n",
                    obs::eventKindName(kind).c_str(),
                    static_cast<unsigned long long>(ks.count),
                    sum.ratePerKiloCycle(kind), ks.gaps.mean(),
                    ks.gaps.quantile(0.50), ks.gaps.quantile(0.99));
    }
    for (const auto &[kind, ks] : sum.byKind) {
        if (ks.byLabel.empty() ||
            (ks.byLabel.size() == 1 && ks.byLabel.count("")))
            continue;
        std::printf("\n%s by label:\n", obs::eventKindName(kind).c_str());
        for (const auto &[label, n] : ks.byLabel) {
            std::printf("  %-24s %10llu\n",
                        label.empty() ? "(none)" : label.c_str(),
                        static_cast<unsigned long long>(n));
        }
    }
    return 0;
}

int
cmdFilter(const obs::TraceFilter &filter,
          const std::vector<std::string> &paths)
{
    const std::vector<obs::TraceEvent> events = loadAll(paths);
    uint64_t matched = 0;
    for (const obs::TraceEvent &event :
         obs::filterEvents(events, filter)) {
        obs::JsonWriter w(0);
        event.writeJson(w);
        std::printf("%s\n", w.str().c_str());
        ++matched;
    }
    std::fprintf(stderr, "aiecc-trace: %llu of %llu events matched\n",
                 static_cast<unsigned long long>(matched),
                 static_cast<unsigned long long>(events.size()));
    return 0;
}

int
cmdExport(const std::string &outPath,
          const std::vector<std::string> &paths)
{
    const std::vector<obs::TraceEvent> events = loadAll(paths);
    obs::JsonWriter w;
    const uint64_t spans = obs::writeChromeTrace(events, w);
    if (outPath.empty()) {
        std::printf("%s\n", w.str().c_str());
    } else if (!w.writeFile(outPath)) {
        std::fprintf(stderr, "aiecc-trace: cannot write %s\n",
                     outPath.c_str());
        return 1;
    } else {
        std::fprintf(stderr,
                     "aiecc-trace: %llu events, %llu episode span(s) "
                     "-> %s\n",
                     static_cast<unsigned long long>(events.size()),
                     static_cast<unsigned long long>(spans),
                     outPath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help") {
        usage(stdout);
        return 0;
    }

    obs::TraceFilter filter;
    bool chrome = false;
    std::string outPath;
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--kind") && i + 1 < argc) {
            const auto kind = obs::eventKindFromName(argv[++i]);
            if (!kind) {
                std::fprintf(stderr, "aiecc-trace: unknown kind: %s\n",
                             argv[i]);
                return 2;
            }
            filter.kind = *kind;
        } else if (!std::strcmp(arg, "--label") && i + 1 < argc) {
            filter.label = argv[++i];
        } else if (!std::strcmp(arg, "--cycle-min") && i + 1 < argc) {
            filter.cycleMin = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(arg, "--cycle-max") && i + 1 < argc) {
            filter.cycleMax = std::strtoull(argv[++i], nullptr, 10);
        } else if (!std::strcmp(arg, "--chrome")) {
            chrome = true;
        } else if ((!std::strcmp(arg, "-o") ||
                    !std::strcmp(arg, "--out")) &&
                   i + 1 < argc) {
            outPath = argv[++i];
        } else if (!std::strcmp(arg, "--help")) {
            usage(stdout);
            return 0;
        } else if (arg[0] == '-' && arg[1] != '\0') {
            std::fprintf(stderr,
                         "aiecc-trace: unknown or incomplete option: "
                         "%s\n",
                         arg);
            usage(stderr);
            return 2;
        } else {
            paths.emplace_back(arg);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr, "aiecc-trace: no input files\n");
        usage(stderr);
        return 2;
    }

    if (cmd == "summary")
        return cmdSummary(paths);
    if (cmd == "filter")
        return cmdFilter(filter, paths);
    if (cmd == "export") {
        if (!chrome) {
            std::fprintf(stderr,
                         "aiecc-trace: export requires a format flag "
                         "(--chrome)\n");
            return 2;
        }
        return cmdExport(outPath, paths);
    }
    std::fprintf(stderr, "aiecc-trace: unknown command: %s\n",
                 cmd.c_str());
    usage(stderr);
    return 2;
}
