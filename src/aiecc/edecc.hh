/**
 * @file
 * Extended data ECC (eDECC), the combined-ECC variant — Section IV-A
 * of the AIECC paper.
 *
 * Chipkill codes are shortened Reed-Solomon codes with unused
 * correction capacity: the same parity symbols can cover a longer
 * codeword at no storage cost.  eDECC appends the 32-bit MTB address
 * to the message as *virtual* symbols that are never stored or
 * transferred — the encoder folds the write address into the parity,
 * and the decoder re-appends the read address.  A read that fetched
 * the wrong location yields the inconsistent tuple {read address,
 * other data, other parity}, which decodes as an error *located in the
 * address symbols*, recovering the address DRAM actually used (precise
 * diagnosis, Section IV-F).
 *
 * Two organizations mirror the paper's Figure 5:
 *  - EDeccQpc: RS(76,68) — QPC Bamboo extended with 4 address symbols;
 *  - EDeccAmd: 4 x RS(19,17) — AMD chipkill, one address symbol per
 *    codeword.
 */

#ifndef AIECC_AIECC_EDECC_HH
#define AIECC_AIECC_EDECC_HH

#include "ecc/data_ecc.hh"
#include "rs/rs_code.hh"

namespace aiecc
{

/** QPC Bamboo ECC extended with 4 virtual address symbols. */
class EDeccQpc : public DataEcc
{
  public:
    EDeccQpc();

    std::string name() const override { return "QPC+eDECC-c"; }
    Burst encode(const BitVec &data, uint32_t mtbAddr) const override;
    EccResult decode(const Burst &burst, uint32_t mtbAddr) const override;
    bool protectsAddress() const override { return true; }
    bool preciseDiagnosis() const override { return true; }

    /** Codeword geometry: 64 data + 4 address + 8 parity symbols. */
    static constexpr unsigned addrSymbols = 4;

  private:
    RsCodec rs;
    /** Decode scratch; stacks own their codecs, so this is unshared. */
    mutable RsWorkspace ws;
};

/** AMD chipkill extended with one virtual address symbol per word. */
class EDeccAmd : public DataEcc
{
  public:
    EDeccAmd();

    std::string name() const override { return "AMD+eDECC-c"; }
    Burst encode(const BitVec &data, uint32_t mtbAddr) const override;
    EccResult decode(const Burst &burst, uint32_t mtbAddr) const override;
    bool protectsAddress() const override { return true; }
    bool preciseDiagnosis() const override { return true; }

    static constexpr unsigned numWords = 4;
    static constexpr unsigned dataChips = 16;
    static constexpr unsigned checkChips = 2;

  private:
    RsCodec rs;
    /** Decode scratch; stacks own their codecs, so this is unshared. */
    mutable RsWorkspace ws;
};

} // namespace aiecc

#endif // AIECC_AIECC_EDECC_HH
