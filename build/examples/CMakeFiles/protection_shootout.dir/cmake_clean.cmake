file(REMOVE_RECURSE
  "CMakeFiles/protection_shootout.dir/protection_shootout.cc.o"
  "CMakeFiles/protection_shootout.dir/protection_shootout.cc.o.d"
  "protection_shootout"
  "protection_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protection_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
