#include "aiecc/stack.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace aiecc
{

ProtectionStack::ProtectionStack(const StackConfig &config)
    : cfg(config), codec(makeEcc(config.mech.ecc)),
      hlOpenRow(config.geom.numBanks(), -1)
{
    RankConfig rc;
    rc.geom = cfg.geom;
    rc.timing = cfg.timing;
    rc.parityMode = cfg.mech.parity;
    rc.wcrcMode = cfg.mech.wcrc;
    rc.cstcEnabled = cfg.mech.cstc;
    rc.garbageSeed = cfg.seed;
    // Never-written locations behave as if the whole array had been
    // initialized with valid (address-bound, for eDECC) codewords.
    DataEcc *ecc = codec.get();
    rc.fillFn = [ecc](uint32_t packedAddr) {
        Rng fillRng(0xF177ULL ^ (static_cast<uint64_t>(packedAddr) << 13));
        BitVec data(Burst::dataBits);
        for (size_t i = 0; i < data.size(); i += 64)
            data.setField(i, std::min<size_t>(64, data.size() - i),
                          fillRng.next());
        if (ecc)
            return ecc->encode(data, packedAddr);
        Burst raw;
        raw.setData(data);
        return raw;
    };
    rankModel = std::make_unique<DramRank>(rc);
    ctrl = std::make_unique<MemController>(rc, rankModel.get());
    rankModel->setObserver(cfg.observer);
    ctrl->setObserver(cfg.observer);
    if (cfg.observer && cfg.observer->stats()) {
        obs::StatsRegistry &reg = *cfg.observer->stats();
        oc.reads = &reg.counter("stack.reads", "RD commands issued");
        oc.writes = &reg.counter("stack.writes", "WR commands issued");
        oc.detections =
            &reg.counter("stack.detections", "detections, any mechanism");
        oc.corrections = &reg.counter("stack.corrections",
                                      "errors corrected in place");
        oc.dues = &reg.counter("stack.dues",
                               "detected-uncorrectable reads delivered");
        oc.addrDiagnoses = &reg.counter(
            "edecc.addr_diagnoses", "precise eDECC address diagnoses");
        oc.scrubs = &reg.counter("stack.scrubs",
                                 "redirect-scrub write-backs");
        oc.recoveries = &reg.counter(
            "stack.recoveries", "full error-recovery resets");
        for (unsigned m = 0; m < 7; ++m) {
            oc.byMech[m] = &reg.counter(
                "stack.detect." +
                    mechanismName(static_cast<Mechanism>(m)),
                "detections first flagged by this mechanism");
        }
    }
}

void
ProtectionStack::noteDetection(DetectionEvent event)
{
    if (cfg.observer) {
        if (oc.detections) {
            ++*oc.detections;
            ++*oc.byMech[static_cast<unsigned>(event.mech)];
            if (event.corrected)
                ++*oc.corrections;
            if (event.diagnosedAddress)
                ++*oc.addrDiagnoses;
        }
        cfg.observer->emit(
            obs::EventKind::Detection, event.when,
            mechanismName(event.mech),
            event.diagnosedAddress ? *event.diagnosedAddress : 0,
            event.detail);
    }
    events.push_back(std::move(event));
}

void
ProtectionStack::setPinCorruptor(PinCorruptor corruptor)
{
    ctrl->setPinCorruptor(std::move(corruptor));
}

void
ProtectionStack::drainAlerts()
{
    const auto &alerts = ctrl->alerts();
    for (; alertsSeen < alerts.size(); ++alertsSeen) {
        const Alert &alert = alerts[alertsSeen];
        DetectionEvent ev;
        ev.when = alert.when;
        ev.early = true; // device alerts block the command pre-array
        ev.detail = alert.detail;
        switch (alert.kind) {
          case AlertKind::CaParity:
            ev.mech = cfg.mech.parity == ParityMode::ECap
                          ? Mechanism::ECap
                          : Mechanism::Cap;
            break;
          case AlertKind::Wcrc:
            ev.mech = cfg.mech.wcrc == WcrcMode::DataAddress
                          ? Mechanism::EWcrc
                          : Mechanism::Wcrc;
            ev.addressError = cfg.mech.wcrc == WcrcMode::DataAddress;
            break;
          case AlertKind::Cstc:
            ev.mech = Mechanism::Cstc;
            break;
        }
        noteDetection(std::move(ev));
    }
}

Burst
ProtectionStack::encodeWrite(const MtbAddress &addr,
                             const BitVec &data) const
{
    AIECC_ASSERT(data.size() == Burst::dataBits,
                 "write payload must be " << Burst::dataBits << " bits");
    if (codec)
        return codec->encode(data, addr.pack(cfg.geom));
    Burst raw;
    raw.setData(data);
    return raw;
}

void
ProtectionStack::issueAct(unsigned bg, unsigned ba, unsigned row)
{
    ctrl->issue(Command::act(bg, ba, row));
    drainAlerts();
}

void
ProtectionStack::issueWr(const MtbAddress &addr, const BitVec &data)
{
    const Burst burst = encodeWrite(addr, data);
    if (oc.writes)
        ++*oc.writes;
    ctrl->issue(Command::wr(addr.bg, addr.ba,
                            addr.col << Geometry::burstBits),
                burst);
    drainAlerts();
}

ReadOutcome
ProtectionStack::issueRd(const MtbAddress &addr)
{
    if (oc.reads)
        ++*oc.reads;
    const auto res = ctrl->issue(
        Command::rd(addr.bg, addr.ba, addr.col << Geometry::burstBits));
    drainAlerts();

    ReadOutcome out;
    if (!res.readBurst) {
        // The device blocked the read (parity/CSTC alert): the data
        // never arrived.  Report a DUE-like outcome; a retry follows.
        out.detected = true;
        out.due = true;
        if (oc.dues)
            ++*oc.dues;
        return out;
    }

    if (!codec) {
        out.data = res.readBurst->data();
        return out;
    }

    const EccResult ecc =
        codec->decode(*res.readBurst, addr.pack(cfg.geom));
    out.data = ecc.data;
    if (ecc.detected()) {
        out.detected = true;
        out.corrected = ecc.status == EccStatus::Corrected;
        out.due = ecc.status == EccStatus::Uncorrectable;

        DetectionEvent ev;
        ev.mech = codec->protectsAddress() ? Mechanism::EDecc
                                           : Mechanism::Decc;
        ev.when = ctrl->now();
        ev.early = false;
        ev.corrected = out.corrected;
        ev.addressError = ecc.addressError;
        ev.diagnosedAddress = ecc.recoveredAddress;
        ev.detail = codec->name() + (out.corrected ? " corrected read @"
                                                   : " DUE on read @") +
                    addr.toString();
        const bool scrub = cfg.scrubOnCorrection && out.corrected &&
                           !ecc.addressError;
        noteDetection(std::move(ev));
        if (out.due && oc.dues)
            ++*oc.dues;

        if (scrub) {
            // Redirect scrubbing (§V-D): write the corrected block
            // back so the transient flip cannot combine with a later
            // one into an uncorrectable pattern.
            issueWr(addr, out.data);
            ++scrubs;
            if (cfg.observer) {
                if (oc.scrubs)
                    ++*oc.scrubs;
                cfg.observer->emit(obs::EventKind::Scrub, ctrl->now(),
                                   codec->name(), addr.pack(cfg.geom),
                                   "scrub write-back @" + addr.toString());
            }
        }
    }
    return out;
}

void
ProtectionStack::issuePre(unsigned bg, unsigned ba)
{
    ctrl->issue(Command::pre(bg, ba));
    drainAlerts();
}

void
ProtectionStack::issuePreAll()
{
    ctrl->issue(Command::preAll());
    drainAlerts();
}

void
ProtectionStack::issueRef()
{
    ctrl->issue(Command::ref());
    drainAlerts();
}

void
ProtectionStack::issueNop()
{
    ctrl->issue(Command::nop());
    drainAlerts();
}

void
ProtectionStack::recover()
{
    if (cfg.observer) {
        if (oc.recoveries)
            ++*oc.recoveries;
        cfg.observer->emit(obs::EventKind::Recovery, ctrl->now(), "", 0,
                           "resync WRT, drain read FIFO, PREA");
    }
    ctrl->resyncWrt();
    ctrl->resetReadFifo();
    issuePreAll();
    std::fill(hlOpenRow.begin(), hlOpenRow.end(), -1);
}

void
ProtectionStack::write(const MtbAddress &addr, const BitVec &data)
{
    const unsigned bank = addr.flatBank(cfg.geom);
    if (hlOpenRow[bank] != static_cast<int>(addr.row)) {
        if (hlOpenRow[bank] >= 0)
            issuePre(addr.bg, addr.ba);
        issueAct(addr.bg, addr.ba, addr.row);
        hlOpenRow[bank] = static_cast<int>(addr.row);
    }
    issueWr(addr, data);
}

ReadOutcome
ProtectionStack::read(const MtbAddress &addr)
{
    const unsigned bank = addr.flatBank(cfg.geom);
    if (hlOpenRow[bank] != static_cast<int>(addr.row)) {
        if (hlOpenRow[bank] >= 0)
            issuePre(addr.bg, addr.ba);
        issueAct(addr.bg, addr.ba, addr.row);
        hlOpenRow[bank] = static_cast<int>(addr.row);
    }
    return issueRd(addr);
}

} // namespace aiecc
