file(REMOVE_RECURSE
  "CMakeFiles/aiecc_ecc.dir/amd.cc.o"
  "CMakeFiles/aiecc_ecc.dir/amd.cc.o.d"
  "CMakeFiles/aiecc_ecc.dir/qpc.cc.o"
  "CMakeFiles/aiecc_ecc.dir/qpc.cc.o.d"
  "libaiecc_ecc.a"
  "libaiecc_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiecc_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
