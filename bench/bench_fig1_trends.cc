/**
 * @file
 * Figure 1 reproduction: DRAM transfer-rate trends (1a), supply
 * voltage trends (1b) and the DDR4 core/I-O power split (1c).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "trends/trends.hh"

using namespace aiecc;

int
main(int argc, char **argv)
{
    const auto opt = bench::parse(argc, argv);
    bench::banner("Figure 1a/1b: DRAM transfer rate and voltage trends");

    TextTable t;
    t.header({"generation", "year", "data rate (MT/s)",
              "CCCA rate (MT/s)", "CCCA/data", "VDD (V)"});
    for (const auto &g : dramGenerations()) {
        t.row({g.name, std::to_string(g.year),
               TextTable::num(g.dataRateMTs),
               TextTable::num(g.cccaRateMTs),
               TextTable::num(g.cccaRateMTs / g.dataRateMTs, 2),
               TextTable::num(g.vdd, 2)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("Note the paper's Figure 1a point: data rates more than\n"
                "double per generation while CCCA rates stall (GDDR5X\n"
                "could not scale its command bus; DDR4 geardown halves "
                "it).\n");

    bench::banner("Figure 1c: DDR4 power breakdown (core vs I/O)");
    TextTable p;
    p.header({"component", "fraction"});
    for (const auto &b : ddr4PowerBreakdown())
        p.row({b.component, TextTable::pct(b.fraction)});
    std::printf("%s\n", p.str().c_str());
    std::printf("Roughly half of DRAM power pays for reliable "
                "transmission,\nmotivating architectural (rather than "
                "circuit-only) CCCA protection.\n");

    bench::writeJsonArtifact(
        opt, "fig1_trends", [&](obs::JsonWriter &w) {
            w.beginObject();
            w.key("generations");
            w.beginArray();
            for (const auto &g : dramGenerations()) {
                w.beginObject();
                w.kv("name", g.name);
                w.kv("year", g.year);
                w.kv("data_rate_mts", g.dataRateMTs);
                w.kv("ccca_rate_mts", g.cccaRateMTs);
                w.kv("vdd", g.vdd);
                w.endObject();
            }
            w.endArray();
            w.key("ddr4_power_breakdown");
            w.beginObject();
            for (const auto &b : ddr4PowerBreakdown())
                w.kv(b.component, b.fraction);
            w.endObject();
            w.endObject();
        });
    return 0;
}
