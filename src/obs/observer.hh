/**
 * @file
 * The Observer handle the simulation models carry.
 *
 * An Observer bundles an optional StatsRegistry, an optional
 * wall-clock ProfileRegistry, an optional CostAccountant, and any
 * number of TraceSinks.  Models hold a plain `Observer *` (nullptr = fully
 * disabled): the null check is the only cost on the hot path, and
 * producers pre-resolve their Counters at construction so enabled
 * operation stays allocation- and lookup-free per event.
 */

#ifndef AIECC_OBS_OBSERVER_HH
#define AIECC_OBS_OBSERVER_HH

#include <vector>

#include "obs/cost.hh"
#include "obs/profile.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace aiecc
{
namespace obs
{

/** Aggregation point for one measurement context (sinks not owned). */
class Observer
{
  public:
    Observer() = default;
    explicit Observer(StatsRegistry *registry) : reg(registry) {}

    void setStats(StatsRegistry *registry) { reg = registry; }
    StatsRegistry *stats() const { return reg; }

    /** Attach wall-clock profiling (nullptr = profiling off). */
    void setProfile(ProfileRegistry *registry) { prof = registry; }
    ProfileRegistry *profile() const { return prof; }

    /**
     * Attach per-access cost attribution (nullptr = accounting off).
     * Producers test the pointer per event, exactly like stats.
     */
    void setCost(CostAccountant *accountant) { costAcct = accountant; }
    CostAccountant *cost() const { return costAcct; }

    void addSink(TraceSink *sink)
    {
        if (sink)
            sinkList.push_back(sink);
    }
    const std::vector<TraceSink *> &sinks() const { return sinkList; }

    /** True if at least one sink wants events. */
    bool tracing() const { return !sinkList.empty(); }

    /**
     * Lineage context: while nonzero, every emitted event that does
     * not already carry a fault ID is stamped with this one, so
     * producers deep in the stack (recovery episodes, controller
     * retries) attribute to the fault under test without threading an
     * ID parameter through every call.  Campaigns set it around each
     * trial; 0 clears it.
     */
    void setFaultContext(uint64_t faultId) { faultCtx = faultId; }
    uint64_t faultContext() const { return faultCtx; }

    void
    emit(const TraceEvent &event) const
    {
        if (faultCtx && !event.faultId) {
            TraceEvent stamped = event;
            stamped.faultId = faultCtx;
            for (TraceSink *sink : sinkList)
                sink->record(stamped);
            return;
        }
        for (TraceSink *sink : sinkList)
            sink->record(event);
    }

    /** Build-and-emit convenience for producers without a ready event. */
    void
    emit(EventKind kind, uint64_t cycle, std::string label = "",
         uint64_t value = 0, std::string detail = "") const
    {
        if (sinkList.empty())
            return;
        TraceEvent event;
        event.kind = kind;
        event.cycle = cycle;
        event.label = std::move(label);
        event.value = value;
        event.detail = std::move(detail);
        emit(event);
    }

    void
    flush() const
    {
        for (TraceSink *sink : sinkList)
            sink->flush();
    }

  private:
    StatsRegistry *reg = nullptr;
    ProfileRegistry *prof = nullptr;
    CostAccountant *costAcct = nullptr;
    std::vector<TraceSink *> sinkList;
    uint64_t faultCtx = 0;
};

} // namespace obs
} // namespace aiecc

#endif // AIECC_OBS_OBSERVER_HH
