file(REMOVE_RECURSE
  "CMakeFiles/aiecc_crc.dir/crc.cc.o"
  "CMakeFiles/aiecc_crc.dir/crc.cc.o.d"
  "libaiecc_crc.a"
  "libaiecc_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiecc_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
