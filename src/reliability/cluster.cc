#include "reliability/cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace aiecc
{

namespace
{

std::vector<std::vector<double>>
normalize(const std::vector<std::vector<double>> &points)
{
    if (points.empty())
        return {};
    const size_t dims = points[0].size();
    std::vector<double> lo(dims, std::numeric_limits<double>::max());
    std::vector<double> hi(dims, std::numeric_limits<double>::lowest());
    for (const auto &p : points) {
        AIECC_ASSERT(p.size() == dims, "inconsistent feature dims");
        for (size_t d = 0; d < dims; ++d) {
            lo[d] = std::min(lo[d], p[d]);
            hi[d] = std::max(hi[d], p[d]);
        }
    }
    std::vector<std::vector<double>> out(points.size(),
                                         std::vector<double>(dims, 0.0));
    for (size_t i = 0; i < points.size(); ++i) {
        for (size_t d = 0; d < dims; ++d) {
            const double span = hi[d] - lo[d];
            out[i][d] = span > 0 ? (points[i][d] - lo[d]) / span : 0.0;
        }
    }
    return out;
}

double
dist2(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0;
    for (size_t d = 0; d < a.size(); ++d)
        s += (a[d] - b[d]) * (a[d] - b[d]);
    return s;
}

} // namespace

Clustering
hierarchicalCluster(const std::vector<std::vector<double>> &points,
                    size_t k)
{
    AIECC_ASSERT(!points.empty() && k >= 1 && k <= points.size(),
                 "bad clustering parameters");
    const auto norm = normalize(points);

    // Start with singleton clusters; repeatedly merge the pair with
    // the smallest average-linkage distance.
    std::vector<std::vector<size_t>> clusters;
    for (size_t i = 0; i < norm.size(); ++i)
        clusters.push_back({i});

    auto avgLink = [&](const std::vector<size_t> &a,
                       const std::vector<size_t> &b) {
        double sum = 0;
        for (size_t i : a) {
            for (size_t j : b)
                sum += std::sqrt(dist2(norm[i], norm[j]));
        }
        return sum / (static_cast<double>(a.size()) *
                      static_cast<double>(b.size()));
    };

    while (clusters.size() > k) {
        size_t bestA = 0, bestB = 1;
        double best = std::numeric_limits<double>::max();
        for (size_t a = 0; a < clusters.size(); ++a) {
            for (size_t b = a + 1; b < clusters.size(); ++b) {
                const double d = avgLink(clusters[a], clusters[b]);
                if (d < best) {
                    best = d;
                    bestA = a;
                    bestB = b;
                }
            }
        }
        auto merged = clusters[bestA];
        merged.insert(merged.end(), clusters[bestB].begin(),
                      clusters[bestB].end());
        clusters.erase(clusters.begin() +
                       static_cast<std::ptrdiff_t>(bestB));
        clusters[bestA] = std::move(merged);
    }

    Clustering out;
    out.members = clusters;
    for (const auto &cluster : clusters) {
        std::vector<double> centroid(norm[0].size(), 0.0);
        for (size_t i : cluster) {
            for (size_t d = 0; d < centroid.size(); ++d)
                centroid[d] += norm[i][d];
        }
        for (auto &v : centroid)
            v /= static_cast<double>(cluster.size());
        out.centroids.push_back(std::move(centroid));
    }
    return out;
}

size_t
Clustering::medianMember(
    size_t cluster, const std::vector<std::vector<double>> &points) const
{
    AIECC_ASSERT(cluster < members.size(), "cluster out of range");
    // Re-normalize consistently with hierarchicalCluster.
    // (Distances to the stored centroid are computed in the
    // normalized space; we recompute normalization here.)
    std::vector<std::vector<double>> norm;
    {
        // Local copy of the normalization logic keeps the API simple.
        const size_t dims = points[0].size();
        std::vector<double> lo(dims, std::numeric_limits<double>::max());
        std::vector<double> hi(dims,
                               std::numeric_limits<double>::lowest());
        for (const auto &p : points) {
            for (size_t d = 0; d < dims; ++d) {
                lo[d] = std::min(lo[d], p[d]);
                hi[d] = std::max(hi[d], p[d]);
            }
        }
        norm.assign(points.size(), std::vector<double>(dims, 0.0));
        for (size_t i = 0; i < points.size(); ++i) {
            for (size_t d = 0; d < dims; ++d) {
                const double span = hi[d] - lo[d];
                norm[i][d] =
                    span > 0 ? (points[i][d] - lo[d]) / span : 0.0;
            }
        }
    }

    size_t best = members[cluster][0];
    double bestDist = std::numeric_limits<double>::max();
    for (size_t i : members[cluster]) {
        const double d = dist2(norm[i], centroids[cluster]);
        if (d < bestDist) {
            bestDist = d;
            best = i;
        }
    }
    return best;
}

} // namespace aiecc
