file(REMOVE_RECURSE
  "CMakeFiles/aiecc_ctrl.dir/controller.cc.o"
  "CMakeFiles/aiecc_ctrl.dir/controller.cc.o.d"
  "libaiecc_ctrl.a"
  "libaiecc_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiecc_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
