file(REMOVE_RECURSE
  "CMakeFiles/aiecc_gf.dir/gf256.cc.o"
  "CMakeFiles/aiecc_gf.dir/gf256.cc.o.d"
  "CMakeFiles/aiecc_gf.dir/poly.cc.o"
  "CMakeFiles/aiecc_gf.dir/poly.cc.o.d"
  "libaiecc_gf.a"
  "libaiecc_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiecc_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
