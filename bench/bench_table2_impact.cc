/**
 * @file
 * Table II reproduction: the impact of undetected 1-pin CCCA errors
 * across pin locations and the five command patterns, on an
 * unprotected DDR4 channel.  Each cell reports the end-to-end outcome
 * (NE / SDC / MDC / SDC+MDC) and how the corrupted edge decoded
 * (missing, extra, or altered command), matching the paper's
 * CMD- / CMD+ / CMD_A->CMD_B notation.
 *
 * Two companion sweeps ride along: the same 1-pin errors under full
 * AIECC with the in-band recovery engine doing the correcting, and an
 * exhaustive 2-pin sweep under AIECC — every C(pins, 2) combination
 * enumerated by combinadic rank, proving the paper's Figure 7 claim
 * that no 2-pin CCCA error silently corrupts under full AIECC.
 *
 * The whole bench is one checkpointed campaign (DESIGN.md §12): with
 * --checkpoint PATH it persists merged state after every committed
 * shard batch, survives SIGKILL at any instant, and a --resume run
 * finishes with a byte-identical artifact.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "aiecc/cost_model.hh"
#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "inject/campaign.hh"
#include "obs/coverage.hh"
#include "obs/heartbeat.hh"
#include "ras/health.hh"

using namespace aiecc;

namespace
{

/** Paper-style annotation of what the error turned the command into. */
std::string
transition(const TrialResult &r)
{
    const std::string from = cmdName(r.intended.type);
    if (!r.decoded.executed)
        return from + "-";
    if (r.decoded.cmd.type != r.intended.type)
        return from + "->" + cmdName(r.decoded.cmd.type);
    if (!(r.decoded.cmd == r.intended))
        return "addr";
    return "=";
}

/**
 * The display/artifact slice of one Table II cell — everything the
 * table, the JSON and a resumed process need, nothing more (the full
 * TrialResult carries decoded-command state that would be awkward to
 * round-trip through a checkpoint).
 */
struct GridCell
{
    Outcome outcome = Outcome::NoEffect;
    bool detected = false;
    std::string transition; ///< never contains spaces
};

using Grid = std::map<Pin, std::map<CommandPattern, GridCell>>;

/** Checkpoint form of one pattern's grid column, one cell per line. */
std::string
serializeGridColumn(const Grid &grid, CommandPattern pattern)
{
    std::ostringstream out;
    for (const auto &[pin, perPattern] : grid) {
        const auto it = perPattern.find(pattern);
        if (it == perPattern.end())
            continue;
        out << static_cast<unsigned>(pin) << ' '
            << static_cast<unsigned>(it->second.outcome) << ' '
            << (it->second.detected ? 1 : 0) << ' '
            << it->second.transition << '\n';
    }
    return out.str();
}

void
deserializeGridColumn(Grid &grid, CommandPattern pattern,
                      const std::string &text)
{
    std::istringstream in(text);
    unsigned pin = 0, outcome = 0, detected = 0;
    std::string trans;
    while (in >> pin >> outcome >> detected >> trans) {
        grid[static_cast<Pin>(pin)][pattern] = {
            static_cast<Outcome>(outcome), detected != 0, trans};
    }
}

/** The sweeps, each split per pattern into one resumable unit. */
enum class UnitKind
{
    PerPin,   ///< unprotected 1-pin sweep (the Table II grid)
    Recovery, ///< intermittent 1-pin under AIECC + in-band recovery
    TwoPin,   ///< exhaustive 2-pin under AIECC (combinadic order)
    ThreePin, ///< exhaustive 3-pin under AIECC (--exhaustive only)
};

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parse(argc, argv);
    bench::banner("Table II: impact of undetected 1-pin CCCA errors "
                  "(no protection)");

    // 0 = flag absent: campaign benches default to hardware auto
    // (runShards resolves 0 to the hardware concurrency).
    const unsigned jobs = opt.jobs;
    const std::vector<CommandPattern> patterns = allPatterns();

    // One ledger follows every fault of all three sweeps below; the
    // fault-ID salt includes each campaign's mechanism config, so the
    // unprotected and AIECC sweeps can share it without collisions.
    obs::LineageLedger lineage;

    // Per-configuration cost accountants: what each protection level
    // pays for what it catches (the other Pareto axis).
    const Mechanisms noneMech =
        Mechanisms::forLevel(ProtectionLevel::None);
    obs::CostAccountant noneCost(makeCostModel(noneMech));

    InjectionCampaign camp(noneMech);
    camp.setLineageLedger(&lineage);
    camp.setCostAccountant(&noneCost);

    // The AIECC campaign runs both the recovery sweep and the
    // exhaustive 2-pin sweep (shared trial counter, shared salt — the
    // counter keeps their fault IDs apart).
    RecoveryConfig rc;
    if (opt.recoveryAttempts)
        rc.maxAttempts = opt.recoveryAttempts;
    rc.patrolPeriod = opt.recoveryPatrol;
    const unsigned persistence =
        opt.recoveryPersist ? opt.recoveryPersist : 1;

    const Mechanisms aieccMech =
        Mechanisms::forLevel(ProtectionLevel::Aiecc);
    obs::CostAccountant aieccCost(makeCostModel(aieccMech));
    InjectionCampaign aiecc(aieccMech);
    aiecc.setRecoveryConfig(rc);
    aiecc.setLineageLedger(&lineage);
    aiecc.setCostAccountant(&aieccCost);

    // ---- RAS health telemetry (--health, DESIGN.md §15) -----------
    // One monitor rides both campaigns' detection-replay streams
    // (the ledgers are already attached, so attaching trace sinks is
    // all it takes).  Shard buffers re-emit in shard order, keeping
    // the monitor bit-identical for any --jobs value.
    ras::HealthMonitor rasMon;
    obs::Observer rasObs;
    if (opt.health) {
        rasObs.addSink(&rasMon);
        camp.setObserver(&rasObs);
        aiecc.setObserver(&rasObs);
    }

    // ---- checkpointed campaign plan -------------------------------
    // Units in fixed order: 5 per-pin, 5 recovery, 5 exhaustive
    // 2-pin, and with --exhaustive 5 more exhaustive 3-pin.  Each
    // unit is one runTrialsCheckpointed() call; the checkpoint cursor
    // names (unit, next shard) and every state section is rewritten
    // at each commit.
    bench::Checkpointer cp(opt,
                           bench::campaignIdFor(opt, "table2_impact"));

    struct UnitSpec
    {
        UnitKind kind;
        size_t patternIdx;
    };
    std::vector<UnitSpec> units;
    for (size_t p = 0; p < patterns.size(); ++p)
        units.push_back({UnitKind::PerPin, p});
    for (size_t p = 0; p < patterns.size(); ++p)
        units.push_back({UnitKind::Recovery, p});
    for (size_t p = 0; p < patterns.size(); ++p)
        units.push_back({UnitKind::TwoPin, p});
    if (opt.exhaustive) {
        for (size_t p = 0; p < patterns.size(); ++p)
            units.push_back({UnitKind::ThreePin, p});
    }

    const auto nonePins = injectablePins(noneMech.parPinPresent());
    const auto aieccPins = injectablePins(aieccMech.parPinPresent());
    const CombinationSpace twoSpace = aiecc.kPinSpace(2);
    const CombinationSpace threeSpace = aiecc.kPinSpace(3);

    auto unitErrors = [&](const UnitSpec &u) {
        std::vector<PinError> errors;
        switch (u.kind) {
        case UnitKind::PerPin:
            for (Pin pin : nonePins)
                errors.push_back(PinError::onePin(pin));
            break;
        case UnitKind::Recovery:
            for (Pin pin : aieccPins)
                errors.push_back(
                    PinError::intermittent(pin, persistence));
            break;
        case UnitKind::TwoPin:
            errors.reserve(twoSpace.size());
            for (uint64_t rank = 0; rank < twoSpace.size(); ++rank)
                errors.push_back(aiecc.kPinError(2, rank));
            break;
        case UnitKind::ThreePin:
            errors.reserve(threeSpace.size());
            for (uint64_t rank = 0; rank < threeSpace.size(); ++rank)
                errors.push_back(aiecc.kPinError(3, rank));
            break;
        }
        return errors;
    };
    auto unitLabel = [&](const UnitSpec &u) {
        const std::string pat = patternName(patterns[u.patternIdx]);
        switch (u.kind) {
        case UnitKind::PerPin:
            return "perpin:" + pat;
        case UnitKind::Recovery:
            return "recovery:" + pat;
        case UnitKind::TwoPin:
            return "x2pin:" + pat;
        default:
            return "x3pin:" + pat;
        }
    };

    // Merged campaign state (what the checkpoint persists).
    CampaignStats noneStats;
    Grid grid;
    std::map<CommandPattern, CampaignStats> recStats;
    std::map<CommandPattern, CampaignStats> twoStats;
    std::map<CommandPattern, CampaignStats> threeStats;

    // ---- heartbeat (DESIGN.md §13) --------------------------------
    // Commit-driven ticks: shard/trial totals precomputed per unit,
    // progress reported from the commit callback (main thread, after
    // the batch merge), so the payload's live coverage counters read
    // settled state.
    obs::HeartbeatEmitter hb;
    bench::openHeartbeat(hb, opt,
                         bench::campaignIdFor(opt, "table2_impact"));
    std::vector<uint64_t> unitTrials, shardsBefore, trialsBefore;
    uint64_t totalShards = 0, totalTrials = 0;
    for (const UnitSpec &u : units) {
        const uint64_t n = unitErrors(u).size();
        shardsBefore.push_back(totalShards);
        trialsBefore.push_back(totalTrials);
        unitTrials.push_back(n);
        totalShards += shardCount(n, InjectionCampaign::trialShardSize);
        totalTrials += n;
    }
    hb.setTotals(totalShards, totalTrials);
    hb.setPayload([&](obs::JsonWriter &w) {
        const obs::CoverageMatrix::Audit live =
            obs::CoverageMatrix::fromLedger(lineage).audit();
        w.kv("cov_injected", live.injected);
        w.kv("cov_unaccounted", live.unaccounted);
        w.kv("cost_aiecc_storage_bits",
             aieccCost.total(obs::CostCategory::Storage));
        w.kv("cost_aiecc_bus_bits",
             aieccCost.total(obs::CostCategory::Bus));
        w.kv("cost_aiecc_latency_ps",
             aieccCost.total(obs::CostCategory::Latency));
        if (opt.health)
            rasMon.writeHeartbeat(w);
    });
    auto heartbeatAt = [&](size_t u, uint64_t doneShardsInUnit) {
        hb.tick(shardsBefore[u] + doneShardsInUnit,
                trialsBefore[u] +
                    std::min(doneShardsInUnit *
                                 InjectionCampaign::trialShardSize,
                             unitTrials[u]));
    };

    // ---- resume ---------------------------------------------------
    size_t resumeUnit = 0;
    uint64_t resumeShard = 0;
    if (cp.resumed()) {
        CampaignCheckpoint &st = cp.state();
        if (st.has("cursor")) {
            std::istringstream in(st.get("cursor"));
            std::string tag1, tag2;
            in >> tag1 >> resumeUnit >> tag2 >> resumeShard;
        }
        if (st.has("stats:none"))
            noneStats.deserializeState(st.get("stats:none"));
        for (size_t p = 0; p < patterns.size(); ++p) {
            const std::string idx = std::to_string(p);
            if (st.has("grid:" + idx))
                deserializeGridColumn(grid, patterns[p],
                                      st.get("grid:" + idx));
            if (st.has("rec:" + idx)) {
                CampaignStats s;
                s.deserializeState(st.get("rec:" + idx));
                recStats[patterns[p]] = s;
            }
            if (st.has("two:" + idx)) {
                CampaignStats s;
                s.deserializeState(st.get("two:" + idx));
                twoStats[patterns[p]] = s;
            }
            if (st.has("three:" + idx)) {
                CampaignStats s;
                s.deserializeState(st.get("three:" + idx));
                threeStats[patterns[p]] = s;
            }
        }
        if (st.has("lineage"))
            lineage.deserializeState(st.get("lineage"));
        if (st.has("cost:none"))
            noneCost.deserializeState(st.get("cost:none"));
        if (st.has("cost:aiecc"))
            aieccCost.deserializeState(st.get("cost:aiecc"));
        if (opt.health && st.has("ras"))
            rasMon.deserializeState(st.get("ras"));
        // Fault-ID positioning: completed units advance their
        // campaign's trial counter exactly as a live run would; the
        // in-progress unit's counter stays at the unit start
        // (runTrialsCheckpointed reconstructs indices from the shard).
        for (size_t u = 0; u < resumeUnit && u < units.size(); ++u) {
            const uint64_t n = unitErrors(units[u]).size();
            if (units[u].kind == UnitKind::PerPin)
                camp.skipTrials(n);
            else
                aiecc.skipTrials(n);
        }
    }

    // ---- run ------------------------------------------------------
    const uint64_t batch = checkpointBatchShards(jobs);
    auto persist = [&](size_t u, uint64_t nextShard) {
        if (!cp.enabled())
            return;
        CampaignCheckpoint &st = cp.state();
        st.set("cursor", "unit " + std::to_string(u) + " shard " +
                             std::to_string(nextShard));
        st.set("stats:none", noneStats.serializeState());
        for (size_t p = 0; p < patterns.size(); ++p) {
            const std::string idx = std::to_string(p);
            st.set("grid:" + idx,
                   serializeGridColumn(grid, patterns[p]));
            const auto rit = recStats.find(patterns[p]);
            if (rit != recStats.end())
                st.set("rec:" + idx, rit->second.serializeState());
            const auto tit = twoStats.find(patterns[p]);
            if (tit != twoStats.end())
                st.set("two:" + idx, tit->second.serializeState());
            const auto xit = threeStats.find(patterns[p]);
            if (xit != threeStats.end())
                st.set("three:" + idx, xit->second.serializeState());
        }
        st.set("lineage", lineage.serializeState());
        st.set("cost:none", noneCost.serialize());
        st.set("cost:aiecc", aieccCost.serialize());
        if (opt.health)
            st.set("ras", rasMon.serializeState());
        cp.save("unit " + std::to_string(u + 1) + "/" +
                std::to_string(units.size()) + " (" +
                unitLabel(units[u]) + ") shard " +
                std::to_string(nextShard));
    };

    for (size_t u = resumeUnit; u < units.size(); ++u) {
        const UnitSpec &spec = units[u];
        const CommandPattern pattern = patterns[spec.patternIdx];
        const std::vector<PinError> errors = unitErrors(spec);
        uint64_t nextShard = (u == resumeUnit) ? resumeShard : 0;
        hb.setNote(unitLabel(spec));
        InjectionCampaign &runner =
            spec.kind == UnitKind::PerPin ? camp : aiecc;
        const RunStatus status = runner.runTrialsCheckpointed(
            pattern, errors, jobs, batch, nextShard,
            [&](uint64_t trial, const TrialResult &r) {
                switch (spec.kind) {
                case UnitKind::PerPin:
                    noneStats.add(r);
                    grid[nonePins[trial]][pattern] = {
                        r.outcome, r.detected, transition(r)};
                    break;
                case UnitKind::Recovery:
                    recStats[pattern].add(r);
                    break;
                case UnitKind::TwoPin:
                    twoStats[pattern].add(r);
                    break;
                case UnitKind::ThreePin:
                    threeStats[pattern].add(r);
                    break;
                }
            },
            [&](uint64_t, uint64_t end) {
                persist(u, end);
                heartbeatAt(u, end);
            });
        if (status == RunStatus::Interrupted) {
            hb.finalTick(shardsBefore[u] + nextShard,
                         trialsBefore[u] +
                             std::min(nextShard *
                                          InjectionCampaign::
                                              trialShardSize,
                                      unitTrials[u]));
            cp.exitInterrupted();
        }
    }
    hb.finalTick(totalShards, totalTrials);

    // ---- report ---------------------------------------------------
    TextTable t;
    t.header({"pin", "ACT(+WR)", "ACT(+RD)", "WR", "RD", "PRE"});
    for (unsigned i = numCccaPins; i-- > 0;) {
        const Pin pin = static_cast<Pin>(i);
        if (grid.find(pin) == grid.end())
            continue; // CK / PAR not injectable here
        std::vector<std::string> row{pinName(pin)};
        for (CommandPattern pattern : patterns) {
            const GridCell &r = grid[pin][pattern];
            std::string cell = outcomeName(r.outcome);
            if (r.transition != "=" && r.transition != "addr")
                cell += " (" + r.transition + ")";
            row.push_back(cell);
        }
        t.row(row);
    }
    std::printf("%s\n", t.str().c_str());

    bench::banner("In-band recovery under AIECC (persistence " +
                  std::to_string(persistence) + " edge" +
                  (persistence > 1 ? "s" : "") + ", budget " +
                  std::to_string(rc.maxAttempts) + " attempts)");
    TextTable rt;
    rt.header({"pattern", "trials", "episodes", "attempts",
               "att/episode", "recovered", "exhausted", "exh rate"});
    for (CommandPattern pattern : patterns) {
        const CampaignStats &s = recStats[pattern];
        const double perEpisode =
            s.recoveryEpisodes
                ? static_cast<double>(s.recoveryAttempts) /
                      s.recoveryEpisodes
                : 0.0;
        const double exhRate =
            s.trials ? static_cast<double>(s.retryExhausted) / s.trials
                     : 0.0;
        char perEp[32], rate[32];
        std::snprintf(perEp, sizeof perEp, "%.2f", perEpisode);
        std::snprintf(rate, sizeof rate, "%.3f", exhRate);
        rt.row({patternName(pattern), std::to_string(s.trials),
                std::to_string(s.recoveryEpisodes),
                std::to_string(s.recoveryAttempts), perEp,
                std::to_string(s.recoveredFirstTry +
                               s.recoveredAfterRetries),
                std::to_string(s.retryExhausted), rate});
    }
    std::printf("%s\n", rt.str().c_str());

    // Exhaustive 2-pin detection under AIECC: every C(pins, 2)
    // combination of every pattern was enumerated (combinadic rank 0
    // .. C-1), so "all detected" here is a proof over the whole space,
    // not a sample estimate — the paper's 2-pin CA-parity claim.
    bench::banner("Exhaustive 2-pin CCCA errors under AIECC (" +
                  std::to_string(twoSpace.size()) +
                  " combinations per pattern, full enumeration)");
    TextTable xt;
    xt.header({"pattern", "combinations", "detected", "covered",
               "sdc", "mdc"});
    bool twoPinAllCovered = true;
    for (CommandPattern pattern : patterns) {
        const CampaignStats &s = twoStats[pattern];
        // The paper's claim is zero *silent* corruption: undetected
        // combinations are fine as long as they are provably benign
        // (e.g. both flips land in don't-care address bits).
        if (s.sdc || s.mdc)
            twoPinAllCovered = false;
        char cov[32];
        std::snprintf(cov, sizeof cov, "%.6f", s.coveredFrac());
        xt.row({patternName(pattern), std::to_string(s.trials),
                std::to_string(s.detected), cov, std::to_string(s.sdc),
                std::to_string(s.mdc)});
    }
    std::printf("%s", xt.str().c_str());
    std::printf("2-pin coverage claim (Figure 7): %s\n\n",
                twoPinAllCovered
                    ? "HOLDS — zero SDC/MDC over the full space"
                    : "VIOLATED (some combination silently "
                      "corrupted)");

    // --exhaustive extends the proof one order deeper: every
    // C(pins, 3) combination of every pattern, enumerated by
    // combinadic rank exactly like the 2-pin sweep.
    bool threePinAllCovered = true;
    if (opt.exhaustive) {
        bench::banner("Exhaustive 3-pin CCCA errors under AIECC (" +
                      std::to_string(threeSpace.size()) +
                      " combinations per pattern, full enumeration)");
        TextTable x3;
        x3.header({"pattern", "combinations", "detected", "covered",
                   "sdc", "mdc"});
        for (CommandPattern pattern : patterns) {
            const CampaignStats &s = threeStats[pattern];
            if (s.sdc || s.mdc)
                threePinAllCovered = false;
            char cov[32];
            std::snprintf(cov, sizeof cov, "%.6f", s.coveredFrac());
            x3.row({patternName(pattern), std::to_string(s.trials),
                    std::to_string(s.detected), cov,
                    std::to_string(s.sdc), std::to_string(s.mdc)});
        }
        std::printf("%s", x3.str().c_str());
        std::printf("3-pin coverage claim: %s\n\n",
                    threePinAllCovered
                        ? "HOLDS — zero SDC/MDC over the full space"
                        : "VIOLATED (some combination silently "
                          "corrupted)");
    }

    // Conservation audit: every fault either of the campaigns injected
    // must have reached exactly one terminal state.  An unaccounted
    // fault is a harness bug, not a result — fail the bench on it.
    const obs::CoverageMatrix coverage =
        obs::CoverageMatrix::fromLedger(lineage);
    const obs::CoverageMatrix::Audit audit = coverage.audit();
    std::printf("lineage: %llu faults injected, %llu unaccounted, "
                "ledger digest %016llx\n\n",
                static_cast<unsigned long long>(audit.injected),
                static_cast<unsigned long long>(audit.unaccounted),
                static_cast<unsigned long long>(lineage.digest()));

    // Reliability x cost: coverage of each configuration against what
    // its protected traffic cost, from the same trials.
    CampaignStats aieccTotal;
    for (const auto &[pattern, s] : recStats)
        aieccTotal.merge(s);
    bench::CostEntries costs;
    costs.emplace_back("none", noneCost);
    costs.emplace_back("aiecc", aieccCost);
    std::vector<bench::ParetoPoint> pareto{
        bench::ParetoPoint::of("none", "covered_frac",
                               noneStats.coveredFrac(), noneCost),
        bench::ParetoPoint::of("aiecc", "covered_frac",
                               aieccTotal.coveredFrac(), aieccCost)};
    bench::printParetoTable(pareto);

    bench::RasReport rasReport;
    if (opt.health) {
        rasReport.monitor = &rasMon;
        std::printf("\nRAS health: rank %s, %llu event(s) observed, "
                    "%llu fault(s) followed, %zu topology call(s)\n",
                    ras::healthStateName(rasMon.rankState()),
                    static_cast<unsigned long long>(rasMon.eventsSeen()),
                    static_cast<unsigned long long>(
                        rasMon.faultsInjected()),
                    rasMon.topologies().size());
    }

    bench::writeJsonArtifact(
        opt, "table2_impact", costs, pareto, rasReport,
        [&](obs::JsonWriter &w) {
            w.beginObject();
            w.key("impact");
            w.beginObject();
            for (const auto &[pin, perPattern] : grid) {
                w.key(pinName(pin));
                w.beginObject();
                for (const auto &[pattern, r] : perPattern) {
                    w.key(patternName(pattern));
                    w.beginObject();
                    w.kv("outcome", outcomeName(r.outcome));
                    w.kv("transition", r.transition);
                    w.kv("detected", r.detected);
                    w.endObject();
                }
                w.endObject();
            }
            w.endObject();
            w.key("recovery");
            w.beginObject();
            for (const auto &[pattern, s] : recStats) {
                w.key(patternName(pattern));
                s.writeJson(w);
            }
            w.endObject();
            w.key("two_pin");
            w.beginObject();
            w.kv("exhaustive", true);
            w.kv("combinations_per_pattern", twoSpace.size());
            w.kv("all_covered", twoPinAllCovered);
            w.key("patterns");
            w.beginObject();
            for (const auto &[pattern, s] : twoStats) {
                w.key(patternName(pattern));
                s.writeJson(w);
            }
            w.endObject();
            w.endObject();
            if (opt.exhaustive) {
                w.key("three_pin");
                w.beginObject();
                w.kv("exhaustive", true);
                w.kv("combinations_per_pattern", threeSpace.size());
                w.kv("all_covered", threePinAllCovered);
                w.key("patterns");
                w.beginObject();
                for (const auto &[pattern, s] : threeStats) {
                    w.key(patternName(pattern));
                    s.writeJson(w);
                }
                w.endObject();
                w.endObject();
            }
            w.key("coverage");
            coverage.writeJson(w);
            w.key("lineage");
            lineage.writeJson(w);
            w.endObject();
        });

    std::printf(
        "Legend: NE = no error manifests; SDC = silent data corruption;"
        "\nMDC = memory data corruption; CMD- = the command is lost;\n"
        "CMD->X = the command is altered into X.\n\n"
        "Paper cross-checks (Section V-A1):\n"
        "  * any undetected ACT error => SDC+MDC (with WR) or SDC "
        "(with RD);\n"
        "  * WR: A11/A13/A17 manifest no error, everything else "
        "SDC+MDC;\n"
        "  * RD: A11/A13/A17 no error; column/bank/CKE/CS/CAS/BC "
        "errors => SDC;\n"
        "  * PRE: 14 pins (A17, A13..A11, A9..A0) manifest no "
        "error.\n");

    if (!audit.ok) {
        for (const std::string &v : audit.violations)
            std::fprintf(stderr, "coverage audit: %s\n", v.c_str());
        std::fprintf(stderr,
                     "coverage audit FAILED: %llu of %llu injected "
                     "faults unaccounted\n",
                     static_cast<unsigned long long>(audit.unaccounted),
                     static_cast<unsigned long long>(audit.injected));
        return 1;
    }
    cp.finish();
    return 0;
}
