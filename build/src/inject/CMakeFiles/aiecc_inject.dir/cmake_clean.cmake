file(REMOVE_RECURSE
  "CMakeFiles/aiecc_inject.dir/campaign.cc.o"
  "CMakeFiles/aiecc_inject.dir/campaign.cc.o.d"
  "CMakeFiles/aiecc_inject.dir/montecarlo.cc.o"
  "CMakeFiles/aiecc_inject.dir/montecarlo.cc.o.d"
  "libaiecc_inject.a"
  "libaiecc_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiecc_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
