#include "obs/lineage.hh"

#include <sstream>

#include "common/logging.hh"

namespace aiecc
{
namespace obs
{

namespace
{

/** splitmix64 finalizer — the repo-wide stream-derivation mixer. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Ccca: return "ccca";
      case FaultKind::Data: return "data";
      case FaultKind::Addr: return "addr";
      case FaultKind::DataAddr: return "data+addr";
    }
    AIECC_PANIC("unknown FaultKind " << static_cast<int>(kind));
}

std::string
faultTerminalName(FaultTerminal terminal)
{
    switch (terminal) {
      case FaultTerminal::Unaccounted: return "unaccounted";
      case FaultTerminal::Masked: return "masked";
      case FaultTerminal::Detected: return "detected";
      case FaultTerminal::Corrected: return "corrected";
      case FaultTerminal::Recovered: return "recovered";
      case FaultTerminal::Escaped: return "escaped";
    }
    AIECC_PANIC("unknown FaultTerminal " << static_cast<int>(terminal));
}

uint64_t
lineageHash(const std::string &text)
{
    uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    for (const unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL; // FNV prime
    }
    return h;
}

uint64_t
deriveFaultId(uint64_t salt, uint64_t stream, uint64_t trial)
{
    // Distinct multipliers keep (stream, trial) and (trial, stream)
    // from colliding before the finalizer; | 1 reserves 0 for "no
    // fault context" without measurably shrinking the ID space.
    return mix64(salt ^ (mix64(stream) * 0x9e3779b97f4a7c15ULL) ^
                 (mix64(trial) * 0xc2b2ae3d27d4eb4fULL)) |
           1;
}

uint32_t
LineageLedger::internSite(const std::string &name)
{
    const auto it = siteIndex.find(name);
    if (it != siteIndex.end())
        return it->second;
    const auto index = static_cast<uint32_t>(sites.size());
    sites.push_back(name);
    siteIndex.emplace(name, index);
    return index;
}

uint32_t
LineageLedger::internMech(const std::string &name)
{
    const auto it = mechIndex.find(name);
    if (it != mechIndex.end())
        return it->second;
    const auto index = static_cast<uint32_t>(mechs.size());
    mechs.push_back(name);
    mechIndex.emplace(name, index);
    return index;
}

void
LineageLedger::recordInjection(uint64_t faultId, FaultKind kind,
                               const std::string &site)
{
    AIECC_ASSERT(faultId != 0, "fault ID 0 is reserved for no-context");
    if (open.count(faultId))
        AIECC_PANIC("lineage: duplicate injection of fault "
                    << faultId << " at site '" << site << "'");
    LineageRecord rec;
    rec.faultId = faultId;
    rec.kind = kind;
    rec.site = internSite(site);
    open.emplace(faultId, recs.size());
    recs.push_back(rec);
    ++unresolved;
}

void
LineageLedger::resolve(uint64_t faultId, FaultTerminal terminal,
                       const std::string &mechanism, uint32_t observations,
                       uint32_t attempts)
{
    AIECC_ASSERT(terminal != FaultTerminal::Unaccounted,
                 "Unaccounted is not a terminal state; fault " << faultId);
    const auto it = open.find(faultId);
    if (it == open.end())
        AIECC_PANIC("lineage: resolve of fault " << faultId
                    << " which was never injected (or already resolved)");
    LineageRecord &rec = recs[it->second];
    rec.terminal = terminal;
    rec.mech = internMech(mechanism);
    rec.observations = observations;
    rec.attempts = attempts;
    open.erase(it);
    --unresolved;
}

const std::string &
LineageLedger::siteName(uint32_t index) const
{
    AIECC_ASSERT(index < sites.size(), "site index " << index);
    return sites[index];
}

const std::string &
LineageLedger::mechanismLabel(uint32_t index) const
{
    AIECC_ASSERT(index < mechs.size(), "mechanism index " << index);
    return mechs[index];
}

uint64_t
LineageLedger::unaccounted() const
{
    return unresolved;
}

void
LineageLedger::merge(const LineageLedger &other)
{
    for (const LineageRecord &src : other.recs) {
        if (open.count(src.faultId))
            AIECC_PANIC("lineage: merge would duplicate open fault "
                        << src.faultId);
        LineageRecord rec = src;
        rec.site = internSite(other.sites[src.site]);
        rec.mech = internMech(other.mechs[src.mech]);
        if (rec.terminal == FaultTerminal::Unaccounted) {
            open.emplace(rec.faultId, recs.size());
            ++unresolved;
        }
        recs.push_back(rec);
    }
}

std::string
LineageLedger::serialize() const
{
    std::ostringstream out;
    for (const LineageRecord &rec : recs) {
        out << rec.faultId << ' ' << faultKindName(rec.kind) << ' '
            << faultTerminalName(rec.terminal) << ' ' << sites[rec.site]
            << ' ' << (rec.mech ? mechs[rec.mech] : "-") << ' '
            << rec.observations << ' ' << rec.attempts << '\n';
    }
    return out.str();
}

uint64_t
LineageLedger::digest() const
{
    return lineageHash(serialize());
}

std::string
LineageLedger::serializeState() const
{
    std::ostringstream out;
    out << "sites " << sites.size() << '\n';
    for (const std::string &site : sites)
        out << site << '\n';
    out << "mechs " << mechs.size() << '\n';
    for (const std::string &mech : mechs)
        out << mech << '\n';
    out << "records " << recs.size() << " unresolved " << unresolved
        << '\n';
    for (const LineageRecord &rec : recs) {
        out << rec.faultId << ' ' << static_cast<unsigned>(rec.kind)
            << ' ' << static_cast<unsigned>(rec.terminal) << ' '
            << rec.site << ' ' << rec.mech << ' ' << rec.observations
            << ' ' << rec.attempts << '\n';
    }
    return out.str();
}

void
LineageLedger::deserializeState(const std::string &text)
{
    std::istringstream in(text);
    std::string tag;
    uint64_t count = 0;

    LineageLedger fresh;
    fresh.sites.clear();
    fresh.siteIndex.clear();
    fresh.mechs.clear();
    fresh.mechIndex.clear();

    const auto expectTag = [&](const char *want) {
        in >> tag >> count;
        AIECC_ASSERT(in && tag == want,
                     "lineage state: expected '" << want << "' header");
        in.ignore(); // the newline before raw name lines
    };

    expectTag("sites");
    for (uint64_t i = 0; i < count; ++i) {
        std::string name;
        AIECC_ASSERT(static_cast<bool>(std::getline(in, name)),
                     "lineage state: truncated site table");
        fresh.siteIndex.emplace(name, fresh.sites.size());
        fresh.sites.push_back(std::move(name));
    }
    expectTag("mechs");
    for (uint64_t i = 0; i < count; ++i) {
        std::string name;
        AIECC_ASSERT(static_cast<bool>(std::getline(in, name)),
                     "lineage state: truncated mechanism table");
        fresh.mechIndex.emplace(name, fresh.mechs.size());
        fresh.mechs.push_back(std::move(name));
    }

    uint64_t wantUnresolved = 0;
    in >> tag >> count;
    AIECC_ASSERT(in && tag == "records",
                 "lineage state: expected 'records' header");
    in >> tag >> wantUnresolved;
    AIECC_ASSERT(in && tag == "unresolved",
                 "lineage state: expected 'unresolved' count");
    for (uint64_t i = 0; i < count; ++i) {
        LineageRecord rec;
        unsigned kind = 0, terminal = 0;
        in >> rec.faultId >> kind >> terminal >> rec.site >> rec.mech >>
            rec.observations >> rec.attempts;
        AIECC_ASSERT(in, "lineage state: truncated record "
                             << i << " of " << count);
        AIECC_ASSERT(kind < numFaultKinds &&
                         terminal < numFaultTerminals &&
                         rec.site < fresh.sites.size() &&
                         rec.mech < fresh.mechs.size(),
                     "lineage state: record " << i << " out of range");
        rec.kind = static_cast<FaultKind>(kind);
        rec.terminal = static_cast<FaultTerminal>(terminal);
        if (rec.terminal == FaultTerminal::Unaccounted) {
            fresh.open.emplace(rec.faultId, fresh.recs.size());
            ++fresh.unresolved;
        }
        fresh.recs.push_back(rec);
    }
    AIECC_ASSERT(fresh.unresolved == wantUnresolved,
                 "lineage state: unresolved count mismatch ("
                     << fresh.unresolved << " vs " << wantUnresolved
                     << ")");
    *this = std::move(fresh);
}

void
LineageLedger::writeJson(JsonWriter &w, size_t maxRecords) const
{
    w.beginObject();
    w.kv("records", static_cast<uint64_t>(recs.size()));
    w.kv("unaccounted", unresolved);
    std::ostringstream hex;
    hex << std::hex << digest();
    w.kv("digest", hex.str());
    const size_t shown = recs.size() < maxRecords ? recs.size() : maxRecords;
    w.kv("records_shown", static_cast<uint64_t>(shown));
    w.key("lineage").beginArray();
    for (size_t i = 0; i < shown; ++i) {
        const LineageRecord &rec = recs[i];
        w.beginObject();
        std::ostringstream id;
        id << std::hex << rec.faultId;
        w.kv("fault", id.str());
        w.kv("kind", faultKindName(rec.kind));
        w.kv("terminal", faultTerminalName(rec.terminal));
        w.kv("site", sites[rec.site]);
        if (rec.mech)
            w.kv("mech", mechs[rec.mech]);
        if (rec.observations)
            w.kv("observations", rec.observations);
        if (rec.attempts)
            w.kv("attempts", rec.attempts);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace obs
} // namespace aiecc
