/**
 * @file
 * Wall-clock profiling for the hot paths of the simulation stack.
 *
 * Simulation stats (src/obs/stats.hh) count what the *modelled*
 * hardware did, in controller cycles; the profiler measures where
 * *host* cycles go, in nanoseconds of std::chrono::steady_clock.  The
 * two deliberately live in separate registries so a stats dump never
 * mixes model time with wall time.
 *
 * A ProfileRegistry hands out named Histograms of nanosecond samples
 * (same log2 buckets and p50/p90/p99 interpolation as every other
 * Histogram).  Producers resolve a `Histogram *` once at construction
 * — nullptr when profiling is off — and open a ScopedTimer on the hot
 * path: with a null target the timer never reads the clock, so the
 * disabled cost is one pointer test, the same contract the stats
 * layer established.
 */

#ifndef AIECC_OBS_PROFILE_HH
#define AIECC_OBS_PROFILE_HH

#include <chrono>
#include <map>
#include <memory>
#include <string>

#include "obs/json.hh"
#include "obs/memprof.hh"
#include "obs/stats.hh"

namespace aiecc
{
namespace obs
{

/**
 * Find-or-create registry of named nanosecond-distribution timers.
 *
 * Names follow the stats registry's dotted convention ("stack.read",
 * "controller.issue"); addresses are stable across reset(), so
 * producers may keep resolved pointers for the process lifetime.
 */
class ProfileRegistry
{
  public:
    /** Find-or-create the timer called @p name (idempotent). */
    Histogram &timer(const std::string &name,
                     const std::string &description = "");

    /** Timer lookup without creating; nullptr when absent. */
    const Histogram *find(const std::string &name) const;

    /**
     * The allocation scope paired with timer @p name (nullptr when
     * the timer was never registered).  Every timer owns one: while a
     * ScopedTimer on @p name is the innermost active scope on its
     * thread, all heap activity is attributed here (obs/memprof.hh).
     */
    const memprof::AllocStats *findAlloc(const std::string &name) const;

    size_t size() const { return timers.size(); }

    /** Zero every distribution; registrations and addresses survive. */
    void reset();

    /**
     * Fold @p other into this registry: same-named timers merge
     * bucket-wise, timers absent here are registered first.  The
     * join-time aggregation API for sharded campaigns, mirroring
     * StatsRegistry::merge.
     */
    void merge(const ProfileRegistry &other);

    /**
     * Serialize as one JSON object value keyed by full dotted timer
     * name: {"stack.read": {count,total_ns,mean_ns,min_ns,max_ns,
     * p50_ns,p90_ns,p99_ns}, ...}.  Flat keys keep the artifact easy
     * to diff across runs.
     */
    void writeJson(JsonWriter &w) const;

    /**
     * Serialize the per-scope allocation dimension as one JSON object
     * keyed by timer name: {"stack.read": {calls,allocs,frees,
     * alloc_bytes,free_bytes,peak_live_bytes,allocs_per_call}, ...}.
     * Becomes the artifact's "alloc.scopes" member.
     */
    void writeAllocJson(JsonWriter &w) const;

    /** Sum of attributed allocations across every scope. */
    uint64_t totalScopedAllocs() const;

    /**
     * Self-contained checkpoint state form: full histogram state plus
     * each timer's allocation counters, one line per timer.  Like
     * StatsRegistry::serializeState, descriptions are not carried —
     * a restored registry adopts them on re-registration.
     */
    std::string serializeState() const;

    /**
     * Replace this registry's contents with @p text (a
     * serializeState() form).  Malformed input panics: checkpoint
     * payloads are digest-verified before they get here.
     */
    void deserializeState(const std::string &text);

    /** Human-readable dump, one line per timer, sorted by name. */
    std::string str() const;

  private:
    std::map<std::string, std::unique_ptr<Histogram>> timers;
    /** One allocation scope per timer, same keys as `timers`. */
    std::map<std::string, std::unique_ptr<memprof::AllocStats>> allocs;
};

/**
 * RAII nanosecond timer: samples the enclosing scope's duration into
 * @p target on destruction.  A null target skips the clock reads
 * entirely, so instrumented code pays one branch when profiling is
 * disabled.  Timers nest naturally — each scope samples its own
 * histogram, and an inner scope's time is included in the outer's.
 *
 * When the target carries an allocation scope (every ProfileRegistry
 * timer does), the timer also pushes it onto the thread's memprof
 * attribution stack for its lifetime: heap activity inside the scope
 * is attributed to the *innermost* open timer, so nested scopes
 * partition allocations instead of double counting them.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram *target) : hist(target)
    {
        if (hist) {
            scope = hist->allocScope();
            if (scope)
                memprof::pushScope(scope);
            begin = std::chrono::steady_clock::now();
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (hist) {
            hist->sample(elapsedNs());
            if (scope)
                memprof::popScope();
        }
    }

    /** Nanoseconds since construction (0 when disabled). */
    uint64_t
    elapsedNs() const
    {
        if (!hist)
            return 0;
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        return ns > 0 ? static_cast<uint64_t>(ns) : 0;
    }

  private:
    Histogram *hist;
    memprof::AllocStats *scope = nullptr;
    std::chrono::steady_clock::time_point begin{};
};

} // namespace obs
} // namespace aiecc

#endif // AIECC_OBS_PROFILE_HH
