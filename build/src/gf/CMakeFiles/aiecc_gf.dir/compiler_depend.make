# Empty compiler generated dependencies file for aiecc_gf.
# This may be replaced when dependencies are built.
