/**
 * @file
 * The composed protection stack — the main public entry point of the
 * library.
 *
 * A ProtectionStack wires a DRAM rank, a memory controller and a data
 * ECC codec together under one Mechanisms configuration, translating
 * device alerts and ECC decode outcomes into a unified stream of
 * DetectionEvents.  Fault-injection campaigns drive the explicit
 * issue*() interface; applications use the row-managing write()/read()
 * convenience calls.
 */

#ifndef AIECC_AIECC_STACK_HH
#define AIECC_AIECC_STACK_HH

#include <memory>
#include <vector>

#include "aiecc/detection.hh"
#include "aiecc/mechanisms.hh"
#include "controller/controller.hh"
#include "obs/observer.hh"
#include "recovery/recovery.hh"

namespace aiecc
{

/** Full configuration of a protection stack. */
struct StackConfig
{
    Geometry geom{};
    TimingParams timing = TimingParams::ddr4_2400();
    Mechanisms mech{};
    uint64_t seed = 0xA1ECC;

    /**
     * On-demand (redirect) scrubbing, §V-D: when a read corrects an
     * error, immediately write the corrected block back so transient
     * storage flips do not accumulate into uncorrectable patterns.
     * Address-error corrections are *not* scrubbed (the data belongs
     * to another block; retry handles those).
     */
    bool scrubOnCorrection = false;

    /**
     * In-band recovery policies (§IV-G): bounded alert-driven retry,
     * the escalation ladder, and the patrol scrubber.  Enabled by
     * default with the patrol off; set recovery.enabled = false for a
     * detect-only stack.
     */
    RecoveryConfig recovery;

    /**
     * Optional measurement hookup, shared with the controller and
     * rank models.  nullptr (the default) keeps the hot path free of
     * any instrumentation cost beyond one pointer test; with a
     * registry attached, counters are resolved once at construction.
     */
    obs::Observer *observer = nullptr;
};

/** Outcome of a protected read. */
struct ReadOutcome
{
    BitVec data{Burst::dataBits}; ///< payload after any correction
    bool detected = false;  ///< the ECC flagged something
    bool corrected = false; ///< ... and corrected it
    bool due = false;       ///< detected-uncorrectable: do not consume
    /** Chips the decoder corrected symbols on (bitmask, bit = chip). */
    uint32_t correctedChips = 0;
};

/**
 * One memory channel protected by a configurable mechanism set.
 *
 * Detections are handled in-band: the owned RecoveryEngine consumes
 * every alert or flagged decode and drives bounded retry through the
 * real controller path (the private RecoveryPort implementation).
 * Recovery can honestly fail — a fault that persists across the retry
 * window leaves a residual DUE.
 */
class ProtectionStack : private RecoveryPort
{
  public:
    explicit ProtectionStack(const StackConfig &config);

    // ---- Low-level command interface (campaign sequences) ----

    /** Issue an ACT. */
    void issueAct(unsigned bg, unsigned ba, unsigned row);

    /** Issue a WR of @p data to @p addr (bank must be open there). */
    void issueWr(const MtbAddress &addr, const BitVec &data);

    /** Issue a RD from @p addr and run the data ECC over the result. */
    ReadOutcome issueRd(const MtbAddress &addr);

    /** Issue a PRE / PREA / REF / NOP. */
    void issuePre(unsigned bg, unsigned ba);
    void issuePreAll();
    void issueRef();
    void issueNop();

    // ---- High-level convenience (applications) ----

    /** Write, opening/closing rows as needed. */
    void write(const MtbAddress &addr, const BitVec &data);

    /** Read, opening/closing rows as needed. */
    ReadOutcome read(const MtbAddress &addr);

    // ---- Fault injection and introspection ----

    /** Install/replace the pin corruptor (empty clears it). */
    void setPinCorruptor(PinCorruptor corruptor);

    /**
     * Lineage context (obs/lineage.hh): while nonzero, every
     * DetectionEvent this stack raises carries the ID, and the
     * attached observer stamps it onto all emitted trace events —
     * recovery episodes and controller retries included — so a
     * campaign can attribute everything that happens during a trial
     * to the fault under test.  0 clears the context.
     */
    void setFaultContext(uint64_t faultId);
    uint64_t faultContext() const { return faultCtx; }

    /** Detections accumulated since the last clear. */
    const std::vector<DetectionEvent> &detections() const
    {
        return events;
    }
    void clearDetections() { events.clear(); }

    /** Scrub write-backs performed so far (scrubOnCorrection). */
    uint64_t scrubCount() const { return scrubs; }

    /**
     * Full error-recovery reset: resynchronize the write-toggle bit,
     * drain the PHY read FIFO, precharge every bank and drop the
     * high-level row cache, so controller belief and device state
     * agree again before commands are replayed (§IV-G).
     */
    void recover();

    // ---- RAS mitigation hooks (predictive maintenance) ----

    /**
     * Retune the patrol-scrub period live (accesses between patrol
     * steps; 0 disables).  RAS health monitoring raises the patrol
     * rate on degrading components so storage flips are scrubbed
     * before they accumulate into uncorrectable patterns.
     */
    void setPatrolPeriod(uint64_t period)
    {
        cfg.recovery.patrolPeriod = period;
    }
    uint64_t patrolPeriod() const { return cfg.recovery.patrolPeriod; }

    /**
     * Retire @p row of flat bank @p flatBank: every later high-level
     * read()/write() of it is remapped to @p spareRow in the same
     * bank.  The spare starts from the never-written fill state
     * (valid codewords), so the retired row's accumulated damage
     * stops being observable; its stored content is abandoned — the
     * caller re-writes live data it wants to keep.
     */
    void retireRow(unsigned flatBank, unsigned row, unsigned spareRow);

    /** Rows retired so far. */
    size_t retiredRows() const { return rowRemaps.size(); }

    DramRank &rank() { return *rankModel; }
    const DramRank &rank() const { return *rankModel; }
    MemController &controller() { return *ctrl; }
    const Mechanisms &mechanisms() const { return cfg.mech; }
    const Geometry &geometry() const { return cfg.geom; }
    DataEcc *ecc() { return codec.get(); }
    obs::Observer *observer() const { return cfg.observer; }

    /** The in-band recovery engine (escalation queries, stats). */
    RecoveryEngine &recovery() { return *rec; }
    const RecoveryEngine &recovery() const { return *rec; }

    /** Engine totals, queryable without an observer. */
    const RecoveryStats &recoveryStats() const { return rec->stats(); }

  private:
    StackConfig cfg;
    std::unique_ptr<DataEcc> codec;
    std::unique_ptr<DramRank> rankModel;
    std::unique_ptr<MemController> ctrl;
    std::vector<DetectionEvent> events;
    size_t alertsSeen = 0;
    uint64_t scrubs = 0;
    uint64_t faultCtx = 0;

    std::unique_ptr<RecoveryEngine> rec;
    bool inRecovery = false; ///< port calls must not re-enter the engine
    bool inPatrol = false;   ///< patrol reads must not re-tick the patrol
    /** Bank the newest drained alert was attributable to. */
    std::optional<unsigned> lastAlertBank;
    uint64_t accessesSincePatrol = 0;
    size_t patrolCursor = 0;

    /** Counters resolved at construction (observer + registry only). */
    struct StackCounters
    {
        obs::Counter *reads = nullptr;
        obs::Counter *writes = nullptr;
        obs::Counter *detections = nullptr;
        obs::Counter *corrections = nullptr;
        obs::Counter *dues = nullptr;
        obs::Counter *addrDiagnoses = nullptr;
        obs::Counter *scrubs = nullptr;
        obs::Counter *recoveries = nullptr;
        obs::Counter *byMech[7] = {};
        /** Wall-clock scopes (observer + profile registry only). */
        obs::Histogram *tRead = nullptr;
        obs::Histogram *tWrite = nullptr;
        obs::Histogram *tEccEncode = nullptr;
        obs::Histogram *tEccDecode = nullptr;
    };
    StackCounters oc;

    /** Controller-side row bookkeeping for the high-level interface. */
    std::vector<int> hlOpenRow; ///< -1 = closed

    /** One retired row: accesses to (bank, row) land on spare. */
    struct RowRemap
    {
        unsigned bank;
        unsigned row;
        unsigned spare;
    };
    std::vector<RowRemap> rowRemaps;

    /** Apply any retirement remap to @p addr (bank precomputed). */
    void applyRowRemap(unsigned flatBank, MtbAddress &addr) const
    {
        for (const RowRemap &r : rowRemaps) {
            if (r.bank == flatBank && r.row == addr.row) {
                addr.row = r.spare;
                return;
            }
        }
    }

    /** Cost attribution hookup (nullptr = accounting off). */
    obs::CostAccountant *
    costAcct() const
    {
        return cfg.observer ? cfg.observer->cost() : nullptr;
    }

    /** Translate newly-raised device alerts into detection events. */
    void drainAlerts();

    /** Record a detection: stats, trace event, and the event log. */
    void noteDetection(DetectionEvent event);

    /** Prepare the full burst for a write (ECC encode or raw). */
    Burst encodeWrite(const MtbAddress &addr, const BitVec &data) const;

    /**
     * Hand a freshly-drained alert (events grew past @p mark while
     * issuing @p intended) to the recovery engine.
     */
    void maybeRecoverAlert(size_t mark, const Command &intended,
                           const std::optional<ReplayEntry> &wrEntry);

    /** Run one patrol-scrub step when the access period elapsed. */
    void tickPatrol();

    // ---- RecoveryPort (the engine's view of this stack) ----
    Cycle portNow() const override;
    bool wrtMismatch() const override;
    std::optional<ReplayEntry> newestWrite() const override;
    void resyncWrt() override;
    void drainReadFifo() override;
    void backoff(Cycle cycles) override;
    bool reopenRow(unsigned bg, unsigned ba, unsigned row) override;
    bool replayWrite(const ReplayEntry &entry) override;
    std::optional<BitVec> reissueRead(const MtbAddress &addr) override;
    bool reissue(const Command &cmd) override;
};

} // namespace aiecc

#endif // AIECC_AIECC_STACK_HH
