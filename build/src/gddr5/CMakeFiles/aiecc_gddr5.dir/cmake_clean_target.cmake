file(REMOVE_RECURSE
  "libaiecc_gddr5.a"
)
