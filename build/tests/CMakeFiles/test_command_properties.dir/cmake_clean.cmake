file(REMOVE_RECURSE
  "CMakeFiles/test_command_properties.dir/test_command_properties.cc.o"
  "CMakeFiles/test_command_properties.dir/test_command_properties.cc.o.d"
  "test_command_properties"
  "test_command_properties.pdb"
  "test_command_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_command_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
