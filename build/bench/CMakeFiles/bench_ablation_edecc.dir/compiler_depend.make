# Empty compiler generated dependencies file for bench_ablation_edecc.
# This may be replaced when dependencies are built.
