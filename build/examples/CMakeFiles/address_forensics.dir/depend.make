# Empty dependencies file for address_forensics.
# This may be replaced when dependencies are built.
