#include "ddr4/burst.hh"

#include "common/logging.hh"

namespace aiecc
{

GfElem
Burst::amdSymbol(unsigned chip, unsigned word) const
{
    AIECC_ASSERT(chip < numChips && word < 4, "amdSymbol out of range");
    GfElem s = 0;
    for (unsigned j = 0; j < 8; ++j) {
        const unsigned pin = chip * pinsPerChip + (j % 4);
        const unsigned beat = word * 2 + (j / 4);
        if (getBit(pin, beat))
            s |= static_cast<GfElem>(1u << j);
    }
    return s;
}

void
Burst::setAmdSymbol(unsigned chip, unsigned word, GfElem s)
{
    AIECC_ASSERT(chip < numChips && word < 4, "setAmdSymbol out of range");
    for (unsigned j = 0; j < 8; ++j) {
        const unsigned pin = chip * pinsPerChip + (j % 4);
        const unsigned beat = word * 2 + (j / 4);
        setBit(pin, beat, (s >> j) & 1);
    }
}

BitVec
Burst::chipBits(unsigned chip) const
{
    AIECC_ASSERT(chip < numChips, "chipBits out of range");
    BitVec out(pinsPerChip * numBeats);
    for (unsigned p = 0; p < pinsPerChip; ++p) {
        for (unsigned b = 0; b < numBeats; ++b)
            out.set(p * numBeats + b, getBit(chip * pinsPerChip + p, b));
    }
    return out;
}

void
Burst::setChipBits(unsigned chip, const BitVec &bits)
{
    AIECC_ASSERT(chip < numChips, "setChipBits out of range");
    AIECC_ASSERT(bits.size() == pinsPerChip * numBeats,
                 "setChipBits: wrong width");
    for (unsigned p = 0; p < pinsPerChip; ++p) {
        for (unsigned b = 0; b < numBeats; ++b)
            setBit(chip * pinsPerChip + p, b, bits.get(p * numBeats + b));
    }
}

BitVec
Burst::data() const
{
    BitVec out(dataBits);
    for (unsigned p = 0; p < dataPins; ++p)
        out.setField(p * 8, 8, pinBits[p]);
    return out;
}

void
Burst::setData(const BitVec &d)
{
    AIECC_ASSERT(d.size() == dataBits, "setData: wrong width");
    for (unsigned p = 0; p < dataPins; ++p)
        pinBits[p] = static_cast<uint8_t>(d.getField(p * 8, 8));
}

BitVec
Burst::check() const
{
    BitVec out(checkBits);
    for (unsigned p = 0; p < checkPins; ++p)
        out.setField(p * 8, 8, pinBits[dataPins + p]);
    return out;
}

void
Burst::setCheck(const BitVec &c)
{
    AIECC_ASSERT(c.size() == checkBits, "setCheck: wrong width");
    for (unsigned p = 0; p < checkPins; ++p)
        pinBits[dataPins + p] = static_cast<uint8_t>(c.getField(p * 8, 8));
}

void
Burst::randomize(Rng &rng)
{
    for (auto &b : pinBits)
        b = static_cast<uint8_t>(rng.below(256));
}

Burst &
Burst::operator^=(const Burst &other)
{
    for (unsigned p = 0; p < numPins; ++p)
        pinBits[p] ^= other.pinBits[p];
    return *this;
}

} // namespace aiecc
