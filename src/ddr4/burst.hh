/**
 * @file
 * The 72-pin x 8-beat data burst of an ECC DIMM access.
 *
 * One memory transfer block (MTB) moves 64B of data plus 8B of ECC
 * redundancy over 72 DQ pins in 8 beats.  The same physical bit grid
 * is viewed three ways by the coding layers:
 *  - Bamboo/QPC symbols: one 8-bit symbol per pin (72 symbols);
 *  - AMD chipkill symbols: 4 pins x 2 beats per symbol, giving four
 *    18-symbol codewords per burst;
 *  - per-chip lanes: 4 pins x 8 beats (32 bits) per x4 chip, the unit
 *    the DDR4 write CRC covers.
 */

#ifndef AIECC_DDR4_BURST_HH
#define AIECC_DDR4_BURST_HH

#include <array>
#include <cstdint>

#include "common/bitvec.hh"
#include "common/rng.hh"
#include "gf/gf256.hh"

namespace aiecc
{

/** One 72-pin x 8-beat burst: the on-the-wire form of an MTB. */
struct Burst
{
    static constexpr unsigned numPins = 72;
    static constexpr unsigned dataPins = 64;
    static constexpr unsigned checkPins = 8;
    static constexpr unsigned numBeats = 8;
    static constexpr unsigned numChips = 18;  ///< x4 chips on the rank
    static constexpr unsigned pinsPerChip = 4;
    static constexpr unsigned dataBits = dataPins * numBeats;   // 512
    static constexpr unsigned checkBits = checkPins * numBeats; // 64

    /** pinBits[p] bit b = level of pin p at beat b. */
    std::array<uint8_t, numPins> pinBits{};

    bool operator==(const Burst &other) const = default;

    bool
    getBit(unsigned pin, unsigned beat) const
    {
        return (pinBits[pin] >> beat) & 1;
    }

    void
    setBit(unsigned pin, unsigned beat, bool v)
    {
        const uint8_t m = static_cast<uint8_t>(1u << beat);
        pinBits[pin] = v ? (pinBits[pin] | m)
                         : static_cast<uint8_t>(pinBits[pin] & ~m);
    }

    /** The Bamboo-ECC pin symbol: all 8 beats of one pin. */
    GfElem pinSymbol(unsigned pin) const { return pinBits[pin]; }
    void setPinSymbol(unsigned pin, GfElem s) { pinBits[pin] = s; }

    /**
     * The AMD-chipkill symbol for chip @p chip in codeword @p word:
     * 4 pins x 2 beats.  Bit j of the symbol is pin 4*chip + (j % 4)
     * at beat 2*word + (j / 4).
     */
    GfElem amdSymbol(unsigned chip, unsigned word) const;
    void setAmdSymbol(unsigned chip, unsigned word, GfElem s);

    /** The 32 bits driven by one x4 chip (4 pins x 8 beats). */
    BitVec chipBits(unsigned chip) const;
    void setChipBits(unsigned chip, const BitVec &bits);

    /**
     * chipBits() as a packed word: bit p*8+b of the chip lane is bit b
     * of pinBits[chip*4+p], so the lane is just four adjacent pin
     * bytes.  This is the allocation-free form the write-CRC path
     * feeds to Crc::computeWord().
     */
    uint32_t
    chipWord(unsigned chip) const
    {
        const uint8_t *pb = &pinBits[chip * pinsPerChip];
        return static_cast<uint32_t>(pb[0]) |
               static_cast<uint32_t>(pb[1]) << 8 |
               static_cast<uint32_t>(pb[2]) << 16 |
               static_cast<uint32_t>(pb[3]) << 24;
    }

    void
    setChipWord(unsigned chip, uint32_t w)
    {
        uint8_t *pb = &pinBits[chip * pinsPerChip];
        pb[0] = static_cast<uint8_t>(w);
        pb[1] = static_cast<uint8_t>(w >> 8);
        pb[2] = static_cast<uint8_t>(w >> 16);
        pb[3] = static_cast<uint8_t>(w >> 24);
    }

    /**
     * Gather all four AMD codeword symbols of one chip in a single
     * touch (out[w] = amdSymbol(chip, w)); the batch codec's
     * interleaved lanes are filled chip by chip this way.
     */
    void amdChipSymbols(unsigned chip, GfElem out[4]) const;
    void setAmdChipSymbols(unsigned chip, const GfElem in[4]);

    /** The 512 data bits (pins 0..63); byte p equals pin symbol p. */
    BitVec data() const;
    void setData(const BitVec &d);

    /** The 64 check bits (pins 64..71). */
    BitVec check() const;
    void setCheck(const BitVec &c);

    /** Re-randomize every bit (garbage bus / undriven pins model). */
    void randomize(Rng &rng);

    /** XOR another burst in (error-mask application). */
    Burst &operator^=(const Burst &other);
};

} // namespace aiecc

#endif // AIECC_DDR4_BURST_HH
