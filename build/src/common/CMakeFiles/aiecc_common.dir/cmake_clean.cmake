file(REMOVE_RECURSE
  "CMakeFiles/aiecc_common.dir/bitvec.cc.o"
  "CMakeFiles/aiecc_common.dir/bitvec.cc.o.d"
  "CMakeFiles/aiecc_common.dir/logging.cc.o"
  "CMakeFiles/aiecc_common.dir/logging.cc.o.d"
  "CMakeFiles/aiecc_common.dir/rng.cc.o"
  "CMakeFiles/aiecc_common.dir/rng.cc.o.d"
  "CMakeFiles/aiecc_common.dir/table.cc.o"
  "CMakeFiles/aiecc_common.dir/table.cc.o.d"
  "libaiecc_common.a"
  "libaiecc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiecc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
