/**
 * @file
 * Hot-path heap-allocation accounting (DESIGN.md §13).
 *
 * The profiler (obs/profile.hh) answers "where does wall time go?";
 * this module answers "where do the allocations go?" — the question
 * the zero-allocation hot-path rewrite (ROADMAP item 1) needs a
 * baseline and a regression gate for.  A global operator new/delete
 * interposition counts every heap event and attributes it to the
 * innermost active profiling scope on the calling thread, so every
 * existing ScopedTimer site gains an allocation dimension without a
 * single call-site change.
 *
 * Design constraints the implementation lives under:
 *  - the interposed operators may never allocate (no recursion),
 *    which is why the scope stack is a fixed-depth thread-local POD
 *    array and AllocStats is a plain aggregate;
 *  - accounting must be exact under ASan/TSan, so byte counts come
 *    from malloc_usable_size() symmetry (counted identically at
 *    allocation and at free) rather than from size headers;
 *  - per-scope counters are plain fields — a scope is only ever
 *    bumped by the thread that pushed it (shard workers own their
 *    shard-local registries) — while process-wide totals are relaxed
 *    atomics, safe from any thread;
 *  - everything here is observability: it is excluded from checkpoint
 *    digests and never output-affecting, so `--jobs` bit-identity and
 *    crash-resume guarantees are untouched.
 */

#ifndef AIECC_OBS_MEMPROF_HH
#define AIECC_OBS_MEMPROF_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aiecc
{
namespace obs
{

class ProfileRegistry;

namespace memprof
{

/**
 * Allocation counters of one profiling scope (or one merged shard).
 *
 * liveBytes is the net allocated-minus-freed balance observed while
 * the scope was active; peakLiveBytes the highest that balance
 * reached.  A free is billed to the scope active when it happens, not
 * the one that allocated — cross-scope frees therefore show up as a
 * negative liveBytes on the freeing scope, which is exactly the
 * churn signal the hot-path rewrite hunts.
 */
struct AllocStats
{
    uint64_t allocs = 0;     ///< operator new calls attributed here
    uint64_t frees = 0;      ///< operator delete calls attributed here
    uint64_t allocBytes = 0; ///< usable bytes allocated
    uint64_t freeBytes = 0;  ///< usable bytes freed
    int64_t liveBytes = 0;   ///< net balance while the scope was active
    int64_t peakLiveBytes = 0; ///< max of liveBytes over the scope

    /**
     * Fold @p other into this as if its activity happened *after*
     * ours: counts add, and the combined peak is the max of our peak
     * and our final balance plus the other's peak.  Sequential
     * composition is associative, which is what shard-order merging
     * requires (and what the merge-associativity test proves).
     */
    void
    merge(const AllocStats &other)
    {
        allocs += other.allocs;
        frees += other.frees;
        allocBytes += other.allocBytes;
        freeBytes += other.freeBytes;
        const int64_t chained = liveBytes + other.peakLiveBytes;
        if (chained > peakLiveBytes)
            peakLiveBytes = chained;
        liveBytes += other.liveBytes;
    }

    void reset() { *this = AllocStats{}; }
};

/** Process-wide totals since start (or the last resetProcessTotals). */
struct ProcessTotals
{
    uint64_t allocs = 0;
    uint64_t frees = 0;
    uint64_t allocBytes = 0;
    uint64_t freeBytes = 0;
    int64_t liveBytes = 0;
    int64_t peakLiveBytes = 0;
};

/**
 * Deepest scope nesting the thread-local stack records.  Pushes
 * beyond this still balance their pops but attribute to the deepest
 * stored scope — depth 16 is several levels past the deepest real
 * nesting (bench → stack → codec), so overflow means a bug, not data
 * loss worth engineering for.
 */
constexpr int maxScopeDepth = 16;

/**
 * Make @p scope the innermost allocation-attribution target on the
 * calling thread.  Must be balanced by popScope() on the same thread;
 * ScopedTimer does both automatically.  Never allocates.
 */
void pushScope(AllocStats *scope) noexcept;

/** Balance the most recent pushScope() on the calling thread. */
void popScope() noexcept;

/** The calling thread's innermost scope (nullptr outside any). */
AllocStats *currentScope() noexcept;

/** Snapshot the process-wide totals (relaxed reads; advisory). */
ProcessTotals processTotals() noexcept;

/**
 * Zero the process-wide totals (test isolation only — per-scope
 * stats are owned by their registries and unaffected).
 */
void resetProcessTotals() noexcept;

/**
 * Resource-budget gate: hard limits on allocation behaviour, read
 * from the environment so CI can pin the current baseline and fail
 * any bench run that regresses past it.
 *
 *  - AIECC_BUDGET_ALLOCS_PER_ACCESS=F  — the artifact's top-line
 *    allocs-per-access may not exceed F;
 *  - AIECC_BUDGET_SCOPE_ALLOCS=name=F,name=F,...  — the named
 *    profiling scope's allocs-per-call may not exceed F.
 *
 * check() returns human-readable violations (empty = within budget);
 * bench_util's enforceAllocBudgetOrDie() prints them and exits 1.
 */
struct ResourceBudget
{
    double allocsPerAccess = -1.0; ///< top-line limit (<0 = unset)
    /** Per-scope allocs-per-call limits, keyed by dotted scope name. */
    std::map<std::string, double> scopeAllocsPerCall;

    /** Parse the AIECC_BUDGET_* environment variables. */
    static ResourceBudget fromEnv();

    bool
    enabled() const
    {
        return allocsPerAccess >= 0.0 || !scopeAllocsPerCall.empty();
    }

    /**
     * Evaluate the budget against @p profile's per-scope allocation
     * stats and the top-line @p allocsPerAccess (pass a negative
     * value when the bench has no access denominator).  A budget
     * naming a scope the profile never registered is itself a
     * violation — a silently-missing scope must not pass the gate.
     */
    std::vector<std::string> check(const ProfileRegistry &profile,
                                   double allocsPerAccess) const;
};

} // namespace memprof
} // namespace obs
} // namespace aiecc

#endif // AIECC_OBS_MEMPROF_HH
