src/ddr4/CMakeFiles/aiecc_ddr4.dir/timing.cc.o: \
 /root/repo/src/ddr4/timing.cc /usr/include/stdc-predef.h \
 /root/repo/src/ddr4/timing.hh
