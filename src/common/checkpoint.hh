/**
 * @file
 * Durable campaign checkpoints, graceful shutdown, and the
 * self-crash test hook (DESIGN.md §12).
 *
 * A multi-day exhaustive campaign must be able to die at any instant
 * — SIGKILL, OOM, power loss — and resume without losing committed
 * work or perturbing a single bit of the final artifact.  Three
 * pieces cooperate:
 *
 *  - CampaignCheckpoint: a named-section store (serialized merge
 *    state: CampaignStats, LineageLedger, CostAccountant,
 *    StatsRegistry, per-unit progress) written atomically — temp
 *    file, fsync, rename — with an FNV-1a content digest.  A
 *    truncated or tampered file never loads: the reader rejects it
 *    with a diagnostic naming the last progress note that survived,
 *    and the caller restarts from the last good state (for an
 *    atomically-replaced file, that is the file itself or nothing).
 *
 *  - Graceful shutdown: SIGINT/SIGTERM flip a process-wide atomic
 *    stop flag.  runShardsCheckpointed() checks it between shard
 *    batches, drains the in-flight batch, lets the caller commit a
 *    final checkpoint, and returns RunStatus::Interrupted; benches
 *    exit with exitInterrupted (75, EX_TEMPFAIL: try again) so
 *    wrappers can distinguish "resumable" from success or failure.
 *
 *  - Self-crash injection: AIECC_CRASH_AFTER_SHARD=N hard-kills the
 *    process (std::_Exit(137), no atexit, no flush) once N shards
 *    have completed — *before* the batch that crossed the threshold
 *    commits, so the checkpoint on disk is strictly older than the
 *    work done.  Tests and CI use it to prove kill → resume → final
 *    JSON is byte-identical to an uninterrupted run.
 *
 * Determinism contract: the batch size is never output-affecting.
 * Batches are contiguous shard ranges executed with the same
 * runShards() claim loop and merged strictly in shard order, so any
 * (batch size, jobs, kill point) triple yields the same final merged
 * state as one uninterrupted sequential run.
 */

#ifndef AIECC_COMMON_CHECKPOINT_HH
#define AIECC_COMMON_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace aiecc
{

/** How a checkpointed run ended. */
enum class RunStatus
{
    Completed,   ///< every shard ran and was committed
    Interrupted, ///< stop requested; committed prefix is on disk
};

/**
 * Process exit status for "interrupted but resumable" (EX_TEMPFAIL):
 * distinct from success (0), failure (1) and flag errors (2).
 */
constexpr int exitInterrupted = 75;

/**
 * Install SIGINT/SIGTERM handlers that flip the stop flag (idempotent;
 * the second signal falls through to the default disposition so a
 * stuck run can still be killed).  Benches call this before their
 * first checkpointed campaign.
 */
void installStopHandlers();

/** True once a stop signal (or requestStop()) arrived. */
bool stopRequested();

/** Programmatic stop, for tests and embedding harnesses. */
void requestStop();

/** Reset the stop flag (tests only). */
void clearStopRequest();

/**
 * The AIECC_CRASH_AFTER_SHARD threshold (0 = hook disabled), parsed
 * once per process.
 */
uint64_t crashAfterShardThreshold();

/**
 * A durable key→blob store for one campaign's resumable state.
 *
 * Sections hold the serialized forms the obs/ merge types already
 * guarantee byte-stable (LineageLedger, CostAccountant, ...) plus
 * bench-private progress blobs; the campaign ID pins the file to one
 * (bench, output-affecting options) pair so a checkpoint can never be
 * resumed into a differently-configured run.  serialize() is a
 * length-prefixed text form ending in a digest line; loadFile()
 * verifies the digest before exposing any section.
 */
class CampaignCheckpoint
{
  public:
    /** Set the campaign identity (one line; no '\n'). */
    void setCampaignId(const std::string &id);
    const std::string &campaignId() const { return id; }

    /**
     * Set the human-readable progress note ("unit 7/44 shard 120");
     * carried in the header, quoted by load-failure diagnostics as
     * the last good state.
     */
    void setProgressNote(const std::string &note);
    const std::string &progressNote() const { return progress; }

    bool has(const std::string &name) const;
    /** Section payload; panics when absent (check has() first). */
    const std::string &get(const std::string &name) const;
    void set(const std::string &name, std::string data);
    void erase(const std::string &name);
    size_t sectionCount() const { return sections.size(); }

    /** Canonical text form (header, sections, digest trailer). */
    std::string serialize() const;

    /** Outcome of deserialize()/loadFile(). */
    struct Load
    {
        bool ok = false;
        /** Why the load failed (empty when ok). */
        std::string error;
    };

    /**
     * Parse @p text, replacing this checkpoint's contents.  Rejects
     * truncated input, malformed framing, and digest mismatches; the
     * error quotes the campaign ID and progress note when the header
     * survived, so the diagnostic names the last good shard.
     */
    Load deserialize(const std::string &text);

    /**
     * Atomically replace @p path: write to a temp file in the same
     * directory, fsync, rename.  Readers (and crashes at any instant)
     * see either the old complete file or the new complete file,
     * never a mix.
     */
    Load saveAtomic(const std::string &path) const;

    /** Read and deserialize @p path. */
    Load loadFile(const std::string &path);

  private:
    std::string id;
    std::string progress;
    std::map<std::string, std::string> sections;
};

/**
 * Run shards [nextShard, totalShards) in contiguous batches of
 * @p batchShards, calling @p fn(globalShardIndex) from the runShards()
 * worker pool and @p commit(batchBegin, batchEnd) on the calling
 * thread after each batch joins.  The caller's commit merges the
 * batch's shard-local state in shard order and persists its
 * checkpoint; on return from commit the batch is durable and
 * @p nextShard has advanced.
 *
 * Between batches the stop flag is checked: a pending stop returns
 * Interrupted with nextShard at the first uncommitted shard.  The
 * AIECC_CRASH_AFTER_SHARD hook fires after a batch joins but before
 * its commit — the simulated kill always loses in-flight work, which
 * resume must redo identically.
 */
RunStatus
runShardsCheckpointed(uint64_t totalShards, uint64_t batchShards,
                      unsigned jobs, uint64_t &nextShard,
                      const std::function<void(uint64_t)> &fn,
                      const std::function<void(uint64_t, uint64_t)> &commit);

/**
 * runShardsCheckpointed() with a progress callback: @p progress(done)
 * fires after each shard completes, with @p done the *global* count
 * of shards finished (committed prefix + this batch's completions) —
 * the number a heartbeat reports as shards_done.  Invoked from worker
 * threads like the runShards() progress overload, and under the same
 * contract: observability only, never output-affecting.
 */
RunStatus
runShardsCheckpointed(uint64_t totalShards, uint64_t batchShards,
                      unsigned jobs, uint64_t &nextShard,
                      const std::function<void(uint64_t)> &fn,
                      const std::function<void(uint64_t, uint64_t)> &commit,
                      const std::function<void(uint64_t)> &progress);

/**
 * Batch size for checkpointed campaigns: AIECC_CHECKPOINT_BATCH_SHARDS
 * when set, else max(2 * resolved jobs, 8) — big enough to keep the
 * pool busy, small enough that a kill loses seconds, not hours.
 */
uint64_t checkpointBatchShards(unsigned jobs);

} // namespace aiecc

#endif // AIECC_COMMON_CHECKPOINT_HH
