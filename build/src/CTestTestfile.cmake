# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("gf")
subdirs("rs")
subdirs("crc")
subdirs("ddr4")
subdirs("dram")
subdirs("controller")
subdirs("ecc")
subdirs("aiecc")
subdirs("inject")
subdirs("workload")
subdirs("reliability")
subdirs("hwmodel")
subdirs("trends")
subdirs("gddr5")
