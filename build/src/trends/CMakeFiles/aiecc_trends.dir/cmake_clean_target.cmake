file(REMOVE_RECURSE
  "libaiecc_trends.a"
)
