#include "common/logging.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace aiecc
{
namespace detail
{

bool
informEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("AIECC_LOG_LEVEL");
        if (!env)
            return false;
        std::string level(env);
        std::transform(level.begin(), level.end(), level.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        return level == "inform" || level == "info" || level == "debug" ||
               level == "all";
    }();
    return enabled;
}

void
logMessage(LogLevel level, const char *file, int line,
           const std::string &msg)
{
    const char *prefix = "info";
    switch (level) {
      case LogLevel::Inform: prefix = "info"; break;
      case LogLevel::Warn:   prefix = "warn"; break;
      case LogLevel::Fatal:  prefix = "fatal"; break;
      case LogLevel::Panic:  prefix = "panic"; break;
    }
    std::cerr << prefix << ": " << msg << " (" << file << ":" << line
              << ")" << std::endl;
}

} // namespace detail
} // namespace aiecc
