# Empty compiler generated dependencies file for aiecc_gddr5.
# This may be replaced when dependencies are built.
