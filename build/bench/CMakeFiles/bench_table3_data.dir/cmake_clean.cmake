file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_data.dir/bench_table3_data.cc.o"
  "CMakeFiles/bench_table3_data.dir/bench_table3_data.cc.o.d"
  "bench_table3_data"
  "bench_table3_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
