#include "obs/heartbeat.hh"

#include <atomic>
#include <csignal>
#include <cstdlib>

#include "obs/memprof.hh"

namespace aiecc
{
namespace obs
{

namespace
{

// SIGUSR1 sets a flag the next tick consumes; the handler itself
// does nothing else (async-signal-safe by construction).
std::atomic<bool> gForceDump{false};

void
onForceDump(int)
{
    gForceDump.store(true, std::memory_order_relaxed);
}

void
installForceDumpHandler()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    struct sigaction sa = {};
    sa.sa_handler = onForceDump;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART; // a heartbeat poke must not abort I/O
    sigaction(SIGUSR1, &sa, nullptr);
}

} // namespace

bool
HeartbeatEmitter::open(const std::string &path,
                       const std::string &campaignId)
{
    if (path.empty())
        return false;
    std::lock_guard<std::mutex> guard(mtx);
    // Append: a resumed campaign continues its existing log, so the
    // file tells the whole multi-session story in order.
    out = std::fopen(path.c_str(), "a");
    if (!out)
        return false;
    campaign = campaignId;
    if (const char *ms = std::getenv("AIECC_HEARTBEAT_INTERVAL_MS"))
        intervalMs = std::strtoull(ms, nullptr, 10);
    opened = std::chrono::steady_clock::now();
    lastEmit = opened;
    installForceDumpHandler();
    return true;
}

void
HeartbeatEmitter::setTotals(uint64_t shards, uint64_t trials)
{
    std::lock_guard<std::mutex> guard(mtx);
    totalShards = shards;
    totalTrials = trials;
}

void
HeartbeatEmitter::setNote(const std::string &n)
{
    std::lock_guard<std::mutex> guard(mtx);
    note = n;
}

void
HeartbeatEmitter::setPayload(std::function<void(JsonWriter &)> fn)
{
    std::lock_guard<std::mutex> guard(mtx);
    payload = std::move(fn);
}

void
HeartbeatEmitter::tick(uint64_t shardsDone, uint64_t trialsDone)
{
    if (!out)
        return;
    std::lock_guard<std::mutex> guard(mtx);
    if (!out)
        return;
    const bool forced =
        gForceDump.exchange(false, std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now();
    const bool first = !ticked;
    if (first) {
        // Session-relative rate baseline: on a resume, trialsDone
        // already includes earlier sessions' work, which must not
        // inflate this session's throughput or deflate its ETA.
        ticked = true;
        opened = now;
        baseTrials = trialsDone;
    }
    const uint64_t sinceMs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - lastEmit)
            .count());
    if (first || forced || intervalMs == 0 || sinceMs >= intervalMs)
        emit(shardsDone, trialsDone, forced);
}

void
HeartbeatEmitter::finalTick(uint64_t shardsDone, uint64_t trialsDone)
{
    if (!out)
        return;
    std::lock_guard<std::mutex> guard(mtx);
    if (!out)
        return;
    if (!ticked) {
        ticked = true;
        opened = std::chrono::steady_clock::now();
        baseTrials = trialsDone;
    }
    emit(shardsDone, trialsDone, false);
}

void
HeartbeatEmitter::close()
{
    std::lock_guard<std::mutex> guard(mtx);
    if (!out)
        return;
    std::fclose(out);
    out = nullptr;
}

void
HeartbeatEmitter::emit(uint64_t shardsDone, uint64_t trialsDone,
                       bool forced)
{
    const auto now = std::chrono::steady_clock::now();
    const double elapsedS =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            now - opened)
            .count();
    const double sessionTrials =
        trialsDone >= baseTrials
            ? static_cast<double>(trialsDone - baseTrials)
            : 0.0;
    const double rate = elapsedS > 0.0 ? sessionTrials / elapsedS : 0.0;
    const double remaining =
        totalTrials > trialsDone
            ? static_cast<double>(totalTrials - trialsDone)
            : 0.0;
    const double etaS = rate > 0.0 ? remaining / rate : 0.0;

    JsonWriter w(0);
    w.beginObject();
    w.kv("type", "heartbeat");
    w.kv("seq", ++seq);
    w.kv("campaign", campaign);
    if (!note.empty())
        w.kv("note", note);
    w.kv("shards_done", shardsDone);
    w.kv("shards_total", totalShards);
    w.kv("trials_done", trialsDone);
    w.kv("trials_total", totalTrials);
    w.kv("elapsed_s", elapsedS);
    w.kv("trials_per_s", rate);
    w.kv("eta_s", etaS);
    w.kv("forced", forced);
    const memprof::ProcessTotals t = memprof::processTotals();
    w.kv("alloc_allocs", t.allocs);
    w.kv("alloc_frees", t.frees);
    w.kv("alloc_bytes", t.allocBytes);
    w.kv("alloc_free_bytes", t.freeBytes);
    w.kv("alloc_live_bytes", t.liveBytes);
    w.kv("alloc_peak_live_bytes", t.peakLiveBytes);
    if (payload)
        payload(w);
    w.endObject();

    std::fputs(w.str().c_str(), out);
    std::fputc('\n', out);
    std::fflush(out);
    lastEmit = now;
}

} // namespace obs
} // namespace aiecc
