#include "aiecc/stack.hh"

#include <algorithm>
#include <cstdio>

#include "aiecc/diagnosis.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace aiecc
{

namespace
{

/** Lowercase-hex chip bitmask for detection details ("chips=24"). */
std::string
chipMaskString(uint32_t mask)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%x", mask);
    return buf;
}

} // namespace

ProtectionStack::ProtectionStack(const StackConfig &config)
    : cfg(config), codec(makeEcc(config.mech.ecc)),
      hlOpenRow(config.geom.numBanks(), -1)
{
    RankConfig rc;
    rc.geom = cfg.geom;
    rc.timing = cfg.timing;
    rc.parityMode = cfg.mech.parity;
    rc.wcrcMode = cfg.mech.wcrc;
    rc.cstcEnabled = cfg.mech.cstc;
    rc.garbageSeed = cfg.seed;
    // Never-written locations behave as if the whole array had been
    // initialized with valid (address-bound, for eDECC) codewords.
    DataEcc *ecc = codec.get();
    rc.fillFn = [ecc](uint32_t packedAddr) {
        Rng fillRng(0xF177ULL ^ (static_cast<uint64_t>(packedAddr) << 13));
        BitVec data(Burst::dataBits);
        for (size_t i = 0; i < data.size(); i += 64)
            data.setField(i, std::min<size_t>(64, data.size() - i),
                          fillRng.next());
        if (ecc)
            return ecc->encode(data, packedAddr);
        Burst raw;
        raw.setData(data);
        return raw;
    };
    rankModel = std::make_unique<DramRank>(rc);
    ctrl = std::make_unique<MemController>(rc, rankModel.get());
    ctrl->setReplayDepth(cfg.recovery.replayBufferDepth);
    rec = std::make_unique<RecoveryEngine>(
        cfg.recovery, cfg.geom.numBanks(), cfg.observer);
    rankModel->setObserver(cfg.observer);
    ctrl->setObserver(cfg.observer);
    if (cfg.observer && cfg.observer->stats()) {
        obs::StatsRegistry &reg = *cfg.observer->stats();
        oc.reads = &reg.counter("stack.reads", "RD commands issued");
        oc.writes = &reg.counter("stack.writes", "WR commands issued");
        oc.detections =
            &reg.counter("stack.detections", "detections, any mechanism");
        oc.corrections = &reg.counter("stack.corrections",
                                      "errors corrected in place");
        oc.dues = &reg.counter("stack.dues",
                               "detected-uncorrectable reads delivered");
        oc.addrDiagnoses = &reg.counter(
            "edecc.addr_diagnoses", "precise eDECC address diagnoses");
        oc.scrubs = &reg.counter("stack.scrubs",
                                 "redirect-scrub write-backs");
        oc.recoveries = &reg.counter(
            "stack.recoveries", "full error-recovery resets");
        for (unsigned m = 0; m < 7; ++m) {
            oc.byMech[m] = &reg.counter(
                "stack.detect." +
                    mechanismName(static_cast<Mechanism>(m)),
                "detections first flagged by this mechanism");
        }
    }
    if (cfg.observer && cfg.observer->profile()) {
        obs::ProfileRegistry &prof = *cfg.observer->profile();
        oc.tRead = &prof.timer("stack.read",
                               "high-level protected read, end to end");
        oc.tWrite = &prof.timer(
            "stack.write", "high-level protected write, end to end");
        oc.tEccEncode =
            &prof.timer("stack.ecc_encode", "data-ECC burst encode");
        oc.tEccDecode =
            &prof.timer("stack.ecc_decode", "data-ECC burst decode");
    }
}

void
ProtectionStack::setFaultContext(uint64_t faultId)
{
    faultCtx = faultId;
    if (cfg.observer)
        cfg.observer->setFaultContext(faultId);
}

void
ProtectionStack::noteDetection(DetectionEvent event)
{
    if (faultCtx && !event.faultId)
        event.faultId = faultCtx;
    if (cfg.observer) {
        if (oc.detections) {
            ++*oc.detections;
            ++*oc.byMech[static_cast<unsigned>(event.mech)];
            if (event.corrected)
                ++*oc.corrections;
            if (event.diagnosedAddress)
                ++*oc.addrDiagnoses;
        }
        // The trace value carries the best address evidence available:
        // a precise eDECC diagnosis when there is one, otherwise the
        // access address of the flagged read — the corrected-error
        // address stream RAS topology inference consumes.
        uint64_t addrEvidence = 0;
        if (event.diagnosedAddress)
            addrEvidence = *event.diagnosedAddress;
        else if (event.accessAddress)
            addrEvidence = *event.accessAddress;
        cfg.observer->emit(obs::EventKind::Detection, event.when,
                           mechanismName(event.mech), addrEvidence,
                           event.detail);
    }
    events.push_back(std::move(event));
}

void
ProtectionStack::setPinCorruptor(PinCorruptor corruptor)
{
    ctrl->setPinCorruptor(std::move(corruptor));
}

void
ProtectionStack::drainAlerts()
{
    const auto &alerts = ctrl->alerts();
    for (; alertsSeen < alerts.size(); ++alertsSeen) {
        const Alert &alert = alerts[alertsSeen];
        if (alert.flatBank)
            lastAlertBank = alert.flatBank;
        DetectionEvent ev;
        ev.when = alert.when;
        ev.early = true; // device alerts block the command pre-array
        ev.detail = alert.detail;
        switch (alert.kind) {
          case AlertKind::CaParity:
            ev.mech = cfg.mech.parity == ParityMode::ECap
                          ? Mechanism::ECap
                          : Mechanism::Cap;
            break;
          case AlertKind::Wcrc:
            ev.mech = cfg.mech.wcrc == WcrcMode::DataAddress
                          ? Mechanism::EWcrc
                          : Mechanism::Wcrc;
            ev.addressError = cfg.mech.wcrc == WcrcMode::DataAddress;
            break;
          case AlertKind::Cstc:
            ev.mech = Mechanism::Cstc;
            break;
        }
        noteDetection(std::move(ev));
    }
}

// ---- RecoveryPort: the engine drives recovery through the same
// ---- command path the workload uses, so every replayed edge is
// ---- subject to the live fault model and the full mechanism set.

Cycle
ProtectionStack::portNow() const
{
    return ctrl->now();
}

bool
ProtectionStack::wrtMismatch() const
{
    return cfg.mech.parity == ParityMode::ECap &&
           ctrl->wrtBit() != rankModel->wrtBit();
}

std::optional<ReplayEntry>
ProtectionStack::newestWrite() const
{
    const auto buffered = ctrl->newestWrite();
    if (!buffered)
        return std::nullopt;
    ReplayEntry entry;
    entry.addr = MtbAddress{0, buffered->cmd.bg, buffered->cmd.ba,
                            buffered->row,
                            buffered->cmd.col >> Geometry::burstBits};
    entry.burst = buffered->burst;
    return entry;
}

void
ProtectionStack::resyncWrt()
{
    ctrl->resyncWrt();
}

void
ProtectionStack::drainReadFifo()
{
    ctrl->resetReadFifo();
}

void
ProtectionStack::backoff(Cycle cycles)
{
    if (obs::CostAccountant *cost = costAcct())
        cost->onBackoff(cycles);
    ctrl->idle(cycles);
}

bool
ProtectionStack::reopenRow(unsigned bg, unsigned ba, unsigned row)
{
    const size_t mark = events.size();
    issuePre(bg, ba);
    issueAct(bg, ba, row);
    const bool ok = events.size() == mark;
    // Keep the high-level row cache honest either way: on failure the
    // device's bank state is unknown, so force a fresh PRE/ACT pair on
    // the next managed access.
    hlOpenRow[bg * cfg.geom.banksPerGroup() + ba] =
        ok ? static_cast<int>(row) : -1;
    return ok;
}

bool
ProtectionStack::replayWrite(const ReplayEntry &entry)
{
    const size_t mark = events.size();
    if (oc.writes)
        ++*oc.writes;
    ctrl->issue(Command::wr(entry.addr.bg, entry.addr.ba,
                            entry.addr.col << Geometry::burstBits),
                entry.burst);
    drainAlerts();
    return events.size() == mark;
}

std::optional<BitVec>
ProtectionStack::reissueRead(const MtbAddress &addr)
{
    const size_t mark = events.size();
    if (oc.reads)
        ++*oc.reads;
    const auto res = ctrl->issue(
        Command::rd(addr.bg, addr.ba, addr.col << Geometry::burstBits));
    drainAlerts();
    if (events.size() != mark || !res.readBurst)
        return std::nullopt;
    if (!codec)
        return res.readBurst->data();
    // Decode quietly: the episode's original detection is already
    // logged, and a still-broken reissue is an attempt failure, not a
    // fresh event.
    obs::ScopedTimer timeDecode(oc.tEccDecode);
    if (obs::CostAccountant *cost = costAcct())
        cost->onEccDecode();
    const EccResult ecc =
        codec->decode(*res.readBurst, addr.pack(cfg.geom));
    if (ecc.status == EccStatus::Uncorrectable || ecc.addressError)
        return std::nullopt;
    return ecc.data;
}

bool
ProtectionStack::reissue(const Command &cmd)
{
    const size_t mark = events.size();
    ctrl->issue(cmd);
    drainAlerts();
    return events.size() == mark;
}

void
ProtectionStack::maybeRecoverAlert(
    size_t mark, const Command &intended,
    const std::optional<ReplayEntry> &wrEntry)
{
    if (!rec || inRecovery || events.size() == mark)
        return;
    RecoveryCause cause = RecoveryCause::CaParity;
    switch (events[mark].mech) {
      case Mechanism::Cap:
      case Mechanism::ECap:
        cause = RecoveryCause::CaParity;
        break;
      case Mechanism::Wcrc:
      case Mechanism::EWcrc:
        cause = RecoveryCause::Wcrc;
        break;
      case Mechanism::Cstc:
        cause = RecoveryCause::Cstc;
        break;
      default:
        return; // decode detections recover through issueRd
    }
    unsigned flatBank = 0;
    if (intended.type == CmdType::Act || intended.type == CmdType::Wr ||
        intended.type == CmdType::Rd || intended.type == CmdType::Pre)
        flatBank = intended.bg * cfg.geom.banksPerGroup() + intended.ba;
    else if (lastAlertBank)
        flatBank = *lastAlertBank;
    inRecovery = true;
    rec->onAlert(cause, intended, flatBank, wrEntry, *this);
    inRecovery = false;
}

void
ProtectionStack::tickPatrol()
{
    if (!rec || !cfg.recovery.patrolPeriod || inRecovery || inPatrol)
        return;
    if (++accessesSincePatrol < cfg.recovery.patrolPeriod)
        return;
    accessesSincePatrol = 0;
    const auto addrs = rankModel->storedAddresses();
    if (addrs.empty())
        return;
    patrolCursor %= addrs.size();
    const MtbAddress addr = addrs[patrolCursor++];
    inPatrol = true;
    {
        // Patrol traffic exists only for protection: bill the whole
        // sweep (read and any write-back) to the recovery level.
        obs::ScopedRecoveryCost billPatrol(costAcct());
        const ReadOutcome out = read(addr);
        bool scrubbed = false;
        if (out.corrected && !out.due) {
            // scrubOnCorrection already wrote the block back inside
            // the read; otherwise the patrol performs the write-back
            // itself.
            if (!cfg.scrubOnCorrection)
                write(addr, out.data);
            scrubbed = true;
        }
        inPatrol = false;
        rec->notePatrol(addr, scrubbed, ctrl->now());
    }
}

Burst
ProtectionStack::encodeWrite(const MtbAddress &addr,
                             const BitVec &data) const
{
    AIECC_ASSERT(data.size() == Burst::dataBits,
                 "write payload must be " << Burst::dataBits << " bits");
    if (codec) {
        obs::ScopedTimer timeEncode(oc.tEccEncode);
        if (obs::CostAccountant *cost = costAcct())
            cost->onEccEncode();
        return codec->encode(data, addr.pack(cfg.geom));
    }
    Burst raw;
    raw.setData(data);
    return raw;
}

void
ProtectionStack::issueAct(unsigned bg, unsigned ba, unsigned row)
{
    const size_t mark = events.size();
    ctrl->issue(Command::act(bg, ba, row));
    drainAlerts();
    maybeRecoverAlert(mark, Command::act(bg, ba, row), std::nullopt);
}

void
ProtectionStack::issueWr(const MtbAddress &addr, const BitVec &data)
{
    const Burst burst = encodeWrite(addr, data);
    if (oc.writes)
        ++*oc.writes;
    const size_t mark = events.size();
    const Command cmd =
        Command::wr(addr.bg, addr.ba, addr.col << Geometry::burstBits);
    ctrl->issue(cmd, burst);
    drainAlerts();
    maybeRecoverAlert(mark, cmd, ReplayEntry{addr, burst});
}

ReadOutcome
ProtectionStack::issueRd(const MtbAddress &addr)
{
    if (oc.reads)
        ++*oc.reads;
    const size_t mark = events.size();
    const auto res = ctrl->issue(
        Command::rd(addr.bg, addr.ba, addr.col << Geometry::burstBits));
    drainAlerts();
    const bool deviceAlert = events.size() > mark;

    ReadOutcome out;
    bool addressFault = false;
    if (!res.readBurst) {
        // The device blocked the read (parity/CSTC alert): the data
        // never arrived.
        out.detected = true;
        out.due = true;
    } else if (!codec) {
        out.data = res.readBurst->data();
    } else {
        EccResult ecc;
        {
            obs::ScopedTimer timeDecode(oc.tEccDecode);
            if (obs::CostAccountant *cost = costAcct())
                cost->onEccDecode();
            ecc = codec->decode(*res.readBurst, addr.pack(cfg.geom));
        }
        out.data = ecc.data;
        if (ecc.detected()) {
            out.detected = true;
            out.corrected = ecc.status == EccStatus::Corrected;
            out.due = ecc.status == EccStatus::Uncorrectable;
            out.correctedChips = ecc.correctedChips;
            addressFault = ecc.addressError;

            DetectionEvent ev;
            ev.mech = codec->protectsAddress() ? Mechanism::EDecc
                                               : Mechanism::Decc;
            ev.when = ctrl->now();
            ev.early = false;
            ev.corrected = out.corrected;
            ev.addressError = ecc.addressError;
            ev.diagnosedAddress = ecc.recoveredAddress;
            ev.accessAddress = addr.pack(cfg.geom);
            ev.correctedChips = ecc.correctedChips;
            ev.detail = codec->name() +
                        (out.corrected ? " corrected read @"
                                       : " DUE on read @") +
                        addr.toString();
            if (ecc.correctedChips)
                ev.detail += " chips=" + chipMaskString(ecc.correctedChips);
            const bool scrub = cfg.scrubOnCorrection && out.corrected &&
                               !ecc.addressError;
            const bool diagnose =
                cfg.observer && ecc.addressError && ecc.recoveredAddress;
            noteDetection(std::move(ev));

            if (diagnose) {
                // Cross-check the eDECC diagnosis against the CA-pin
                // model: which command pins must have flipped for the
                // intended address to land where it did (§IV-F).
                const uint32_t intended = addr.pack(cfg.geom);
                const AddressDiagnosis diag = diagnoseAddress(
                    intended, *ecc.recoveredAddress, cfg.geom);
                cfg.observer->emit(
                    obs::EventKind::Diagnosis, ctrl->now(),
                    diag.suspectPins.empty()
                        ? std::string("?")
                        : pinName(diag.suspectPins.front()),
                    static_cast<uint64_t>(intended) << 32 |
                        *ecc.recoveredAddress,
                    diag.toString());
            }

            if (scrub) {
                // Redirect scrubbing (§V-D): write the corrected block
                // back so the transient flip cannot combine with a
                // later one into an uncorrectable pattern.  The
                // write-back is extra traffic the fault caused, so it
                // bills to the recovery cost level in full.
                obs::ScopedRecoveryCost billScrub(costAcct());
                issueWr(addr, out.data);
                ++scrubs;
                if (cfg.observer) {
                    if (oc.scrubs)
                        ++*oc.scrubs;
                    cfg.observer->emit(
                        obs::EventKind::Scrub, ctrl->now(),
                        codec->name(), addr.pack(cfg.geom),
                        "scrub write-back @" + addr.toString());
                }
            }
        }
    }

    // In-band recovery (§IV-G): a device alert on the RD edge, an
    // uncorrectable decode, or a corrected-but-wrong-address decode
    // all mean the delivered payload cannot be consumed as-is.  A
    // plain (non-address) correction needs no retry.
    if (rec && !inRecovery &&
        (deviceAlert || out.due || (out.corrected && addressFault))) {
        inRecovery = true;
        const RecoveryOutcome rr =
            rec->onReadDetection(addr, addr.flatBank(cfg.geom), *this);
        inRecovery = false;
        if (rr.recovered && rr.data) {
            out.data = *rr.data;
            out.detected = true;
            out.corrected = true;
            out.due = false;
        } else if (rr.attempted) {
            // The retry budget ran out: deliver a residual DUE.
            out.corrected = false;
            out.due = true;
        }
    }
    if (out.due && oc.dues)
        ++*oc.dues;
    return out;
}

void
ProtectionStack::issuePre(unsigned bg, unsigned ba)
{
    const size_t mark = events.size();
    ctrl->issue(Command::pre(bg, ba));
    drainAlerts();
    maybeRecoverAlert(mark, Command::pre(bg, ba), std::nullopt);
}

void
ProtectionStack::issuePreAll()
{
    const size_t mark = events.size();
    ctrl->issue(Command::preAll());
    drainAlerts();
    maybeRecoverAlert(mark, Command::preAll(), std::nullopt);
}

void
ProtectionStack::issueRef()
{
    const size_t mark = events.size();
    ctrl->issue(Command::ref());
    drainAlerts();
    maybeRecoverAlert(mark, Command::ref(), std::nullopt);
}

void
ProtectionStack::issueNop()
{
    const size_t mark = events.size();
    ctrl->issue(Command::nop());
    drainAlerts();
    maybeRecoverAlert(mark, Command::nop(), std::nullopt);
}

void
ProtectionStack::recover()
{
    if (cfg.observer) {
        if (oc.recoveries)
            ++*oc.recoveries;
        cfg.observer->emit(obs::EventKind::Recovery, ctrl->now(), "", 0,
                           "resync WRT, drain read FIFO, PREA");
    }
    ctrl->resyncWrt();
    ctrl->resetReadFifo();
    issuePreAll();
    std::fill(hlOpenRow.begin(), hlOpenRow.end(), -1);
}

void
ProtectionStack::retireRow(unsigned flatBank, unsigned row,
                           unsigned spareRow)
{
    AIECC_ASSERT(flatBank < cfg.geom.numBanks(),
                 "retireRow: bad bank " << flatBank);
    // Re-retiring an already-remapped row just retargets the spare.
    for (RowRemap &r : rowRemaps) {
        if (r.bank == flatBank && r.row == row) {
            r.spare = spareRow;
            return;
        }
    }
    rowRemaps.push_back({flatBank, row, spareRow});
}

void
ProtectionStack::write(const MtbAddress &addr_, const BitVec &data)
{
    obs::ScopedTimer timeWrite(oc.tWrite);
    const unsigned bank = addr_.flatBank(cfg.geom);
    MtbAddress addr = addr_;
    if (!rowRemaps.empty())
        applyRowRemap(bank, addr);
    if (hlOpenRow[bank] != static_cast<int>(addr.row)) {
        // A failed recovery episode can drop the row cache while the
        // controller still believes the bank is open; precharge in
        // that case too so the ACT below stays legal.
        if (hlOpenRow[bank] >= 0 || ctrl->bankOpen(bank))
            issuePre(addr.bg, addr.ba);
        issueAct(addr.bg, addr.ba, addr.row);
        hlOpenRow[bank] = static_cast<int>(addr.row);
    }
    issueWr(addr, data);
    tickPatrol();
}

ReadOutcome
ProtectionStack::read(const MtbAddress &addr_)
{
    obs::ScopedTimer timeRead(oc.tRead);
    const unsigned bank = addr_.flatBank(cfg.geom);
    MtbAddress addr = addr_;
    if (!rowRemaps.empty())
        applyRowRemap(bank, addr);
    if (hlOpenRow[bank] != static_cast<int>(addr.row)) {
        if (hlOpenRow[bank] >= 0 || ctrl->bankOpen(bank))
            issuePre(addr.bg, addr.ba);
        issueAct(addr.bg, addr.ba, addr.row);
        hlOpenRow[bank] = static_cast<int>(addr.row);
    }
    const ReadOutcome out = issueRd(addr);
    tickPatrol();
    return out;
}

} // namespace aiecc
