#include "dram/rank.hh"

#include <algorithm>
#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "crc/crc.hh"

namespace aiecc
{

std::string
alertKindName(AlertKind kind)
{
    switch (kind) {
      case AlertKind::CaParity: return "CA-parity";
      case AlertKind::Wcrc: return "write-CRC";
      case AlertKind::Cstc: return "CSTC";
    }
    return "?";
}

DramRank::DramRank(const RankConfig &config)
    : cfg(config), cstc(config.geom, config.timing),
      garbage(config.garbageSeed),
      banks(config.geom.numBanks()),
      store(config.geom.mtbColBits())
{
}

void
DramRank::setObserver(obs::Observer *observer)
{
    oc = {};
    if (!observer || !observer->stats())
        return;
    obs::StatsRegistry &reg = *observer->stats();
    oc.capAlerts =
        &reg.counter("cap.alerts", "CA-parity (CAP/eCAP) mismatches");
    oc.wcrcAlerts =
        &reg.counter("wcrc.alerts", "write-CRC (WCRC/eWCRC) mismatches");
    oc.cstcAlerts = &reg.counter(
        "cstc.alerts", "command state/timing violations flagged");
    oc.garbageReads = &reg.counter(
        "rank.garbage_reads", "RDs served from no open row / bad mode");
    oc.droppedWrites = &reg.counter(
        "rank.dropped_writes", "WRs lost against a closed bank");
    oc.garbageBusWrites = &reg.counter(
        "rank.garbage_bus_writes",
        "spurious WRs that latched the undriven data bus");
    oc.rowCopyovers = &reg.counter(
        "rank.row_copyovers", "duplicate-ACT row copy-over events");
    oc.modeCorruptions = &reg.counter(
        "rank.mode_corruptions", "erroneous MRS config corruptions");
}

DramRank::Bank &
DramRank::bankOf(const Command &cmd)
{
    return banks[cmd.bg * cfg.geom.banksPerGroup() + cmd.ba];
}

const DramRank::Bank &
DramRank::bankOf(const Command &cmd) const
{
    return banks[cmd.bg * cfg.geom.banksPerGroup() + cmd.ba];
}

namespace
{

/**
 * Burst-ordering effect of the sub-burst column bits (A2..A0): a
 * column command whose low bits are nonzero starts the 8-beat burst
 * at a different word, re-ordering every pin's beats.  Intended
 * commands are always MTB-aligned, so this only triggers under
 * transmission errors on A0..A2.
 */
Burst
rotateBeats(const Burst &in, unsigned shift)
{
    Burst out;
    for (unsigned p = 0; p < Burst::numPins; ++p) {
        const unsigned v = in.pinBits[p];
        out.pinBits[p] = static_cast<uint8_t>(
            ((v >> shift) | (v << (8 - shift))) & 0xFF);
    }
    return out;
}

} // namespace

Burst
DramRank::defaultFill(uint32_t packedAddr)
{
    // A deterministic, address-dependent fill so that reads of
    // never-written cells agree between golden and faulty runs.
    Rng rng(0xF111ULL ^ (static_cast<uint64_t>(packedAddr) << 16));
    Burst b;
    b.randomize(rng);
    return b;
}

Burst
DramRank::load(uint32_t packedAddr) const
{
    if (const Burst *stored = store.find(packedAddr))
        return *stored;
    return cfg.fillFn ? cfg.fillFn(packedAddr) : defaultFill(packedAddr);
}

MtbAddress
DramRank::deviceAddress(const Command &cmd, const Bank &bank) const
{
    MtbAddress addr;
    addr.rank = 0;
    addr.bg = cmd.bg;
    addr.ba = cmd.ba;
    addr.row = bank.row;
    addr.col = cmd.col >> Geometry::burstBits;
    return addr;
}

Burst
DramRank::peek(const MtbAddress &addr) const
{
    return load(addr.pack(cfg.geom));
}

void
DramRank::poke(const MtbAddress &addr, const Burst &burst)
{
    store.put(addr.pack(cfg.geom), burst);
}

std::vector<MtbAddress>
DramRank::storedAddresses() const
{
    std::vector<MtbAddress> out;
    out.reserve(store.size());
    for (uint32_t packed : store.sortedKeys())
        out.push_back(MtbAddress::unpack(packed, cfg.geom));
    return out;
}

bool
DramRank::bankOpen(unsigned bg, unsigned ba) const
{
    return banks[bg * cfg.geom.banksPerGroup() + ba].open;
}

unsigned
DramRank::openRow(unsigned bg, unsigned ba) const
{
    return banks[bg * cfg.geom.banksPerGroup() + ba].row;
}

ExecResult
DramRank::step(Cycle now, const PinWord &pins,
               const std::optional<WriteData> &wrData, bool dataCorrupt)
{
    ExecResult result;
    result.decoded = decodeCommand(pins);
    const Command &cmd = result.decoded.cmd;

    if (!result.decoded.ckeHigh) {
        // A CKE glitch drops the device into fast power-down: the
        // edge is lost and the device stays asleep until CKE returns
        // high (between edges, since the controller always drives it
        // high on intended commands).
        if (!powerDown) {
            powerDown = true;
            pdEntry = now;
        }
        return result;
    }
    if (powerDown) {
        // CKE is high again: the device exits power-down.  A valid
        // command must honor tXP from the exit; the controller never
        // intended the power-down, so its next command usually
        // violates it — exactly the protocol breach the CSTC catches.
        powerDown = false;
        if (cfg.cstcEnabled && result.decoded.executed &&
            result.decoded.cmd.type != CmdType::Des &&
            result.decoded.cmd.type != CmdType::Nop &&
            now < pdEntry + cfg.timing.tXP) {
            if (oc.cstcAlerts)
                ++*oc.cstcAlerts;
            const Command &pd = result.decoded.cmd;
            std::optional<unsigned> bank;
            if (pd.type == CmdType::Act || pd.type == CmdType::Rd ||
                pd.type == CmdType::Wr || pd.type == CmdType::Pre)
                bank = pd.bg * cfg.geom.banksPerGroup() + pd.ba;
            result.alerts.push_back(
                {AlertKind::Cstc, now,
                 "command violates tXP after power-down exit (" +
                     pd.toString() + ")", bank});
            return result;
        }
    }

    if (!result.decoded.executed) {
        // Deselected: the edge is invisible to the device.
        return result;
    }

    // 1. CA parity gates everything: on a mismatch the device blocks
    //    the command and pulses ALERT_n.
    if (cfg.parityMode != ParityMode::Off) {
        const bool wrtForParity =
            cfg.parityMode == ParityMode::ECap ? wrt : false;
        if (!checkParity(pins, wrtForParity)) {
            if (oc.capAlerts)
                ++*oc.capAlerts;
            result.alerts.push_back(
                {AlertKind::CaParity, now,
                 "parity mismatch on " + cmd.toString(), std::nullopt});
            return result;
        }
    }

    // The device's write-toggle flips on every *received* WR command,
    // mirroring the controller-side toggle (Section IV-D).
    if (cfg.parityMode == ParityMode::ECap && cmd.type == CmdType::Wr)
        wrt = !wrt;

    // 2. CSTC: protocol state and timing validation (Section IV-C).
    if (cfg.cstcEnabled) {
        if (auto violation = cstc.check(now, cmd)) {
            if (oc.cstcAlerts)
                ++*oc.cstcAlerts;
            std::optional<unsigned> bank;
            if (cmd.type == CmdType::Act || cmd.type == CmdType::Rd ||
                cmd.type == CmdType::Wr || cmd.type == CmdType::Pre)
                bank = cmd.bg * cfg.geom.banksPerGroup() + cmd.ba;
            result.alerts.push_back(
                {AlertKind::Cstc, now,
                 *violation + " (" + cmd.toString() + ")", bank});
            return result;
        }
    }

    // 3. Execute against the array.
    result.executed = true;
    switch (cmd.type) {
      case CmdType::Act:
        doActivate(now, cmd, result);
        break;
      case CmdType::Rd:
        doRead(now, cmd, dataCorrupt, result);
        break;
      case CmdType::Wr:
        doWrite(now, cmd, wrData, dataCorrupt, result);
        break;
      case CmdType::Pre:
        bankOf(cmd).open = false;
        break;
      case CmdType::PreAll:
        for (auto &bank : banks)
            bank.open = false;
        break;
      case CmdType::Ref:
        // With retention margins a refresh (even a spurious one that
        // escaped the CSTC) does not disturb stored data (§IV-C).
        break;
      case CmdType::Mrs:
        // An erroneous mode-register write reconfigures the device:
        // burst length, latencies and termination no longer match the
        // controller, so all subsequent transfers are garbage.
        modeCorrupt = true;
        if (oc.modeCorruptions)
            ++*oc.modeCorruptions;
        break;
      case CmdType::Zqc:
      case CmdType::Rfu:
      case CmdType::Nop:
      case CmdType::Des:
        break;
    }

    if (cfg.cstcEnabled && result.executed)
        cstc.commit(now, cmd);

    return result;
}

void
DramRank::doActivate(Cycle now, const Command &cmd, ExecResult &result)
{
    (void)now;
    Bank &bank = bankOf(cmd);
    if (!bank.open) {
        bank.open = true;
        bank.row = cmd.row;
        return;
    }

    // Duplicate activation (Figure 3c): the bit lines still hold the
    // open row's values, so raising the new word line copies the open
    // row over the newly addressed one.
    const unsigned srcRow = bank.row;
    const unsigned dstRow = cmd.row;
    if (srcRow != dstRow) {
        if (oc.rowCopyovers)
            ++*oc.rowCopyovers;
        // Copy every column that is distinguishable from the default
        // fill in either row.
        const uint32_t srcBase =
            MtbAddress{0, cmd.bg, cmd.ba, srcRow, 0}.pack(cfg.geom);
        const uint32_t dstBase =
            MtbAddress{0, cmd.bg, cmd.ba, dstRow, 0}.pack(cfg.geom);
        std::vector<unsigned> cols;
        store.rowCols(srcBase >> store.colBits(), cols);
        store.rowCols(dstBase >> store.colBits(), cols);
        std::sort(cols.begin(), cols.end());
        cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
        for (unsigned col : cols)
            store.put(dstBase | col, load(srcBase | col));
        result.arrayMutated = !cols.empty();
    }
    bank.row = dstRow;
}

void
DramRank::doRead(Cycle now, const Command &cmd, bool dataCorrupt,
                 ExecResult &result)
{
    (void)now;
    const Bank &bank = bankOf(cmd);
    Burst out;
    if (!bank.open || modeCorrupt) {
        // No row in the sense amplifiers (or a corrupted device
        // configuration): the burst driven back is arbitrary.
        if (oc.garbageReads)
            ++*oc.garbageReads;
        out.randomize(garbage);
    } else {
        const MtbAddress addr = deviceAddress(cmd, bank);
        out = load(addr.pack(cfg.geom));
        const unsigned shift = cmd.col & mask(Geometry::burstBits);
        if (shift)
            out = rotateBeats(out, shift);
        if (disturb)
            disturb(addr, out);
        if (dataCorrupt) {
            // Signal-integrity loss (e.g. an ODT error): flip a few
            // transferred bits.
            const unsigned flips =
                static_cast<unsigned>(garbage.range(1, 8));
            for (unsigned i = 0; i < flips; ++i) {
                const unsigned pin =
                    static_cast<unsigned>(garbage.below(Burst::numPins));
                const unsigned beat = static_cast<unsigned>(
                    garbage.below(Burst::numBeats));
                out.setBit(pin, beat, !out.getBit(pin, beat));
            }
        }
    }
    result.readData = out;
    if (cmd.autoPrecharge)
        bankOf(cmd).open = false;
}

void
DramRank::doWrite(Cycle now, const Command &cmd,
                  const std::optional<WriteData> &wrData, bool dataCorrupt,
                  ExecResult &result)
{
    Bank &bank = bankOf(cmd);

    // Assemble what actually arrives at the device's data receivers.
    WriteData received;
    if (wrData) {
        received = *wrData;
        if (dataCorrupt) {
            const unsigned flips =
                static_cast<unsigned>(garbage.range(1, 8));
            for (unsigned i = 0; i < flips; ++i) {
                const unsigned pin =
                    static_cast<unsigned>(garbage.below(Burst::numPins));
                const unsigned beat = static_cast<unsigned>(
                    garbage.below(Burst::numBeats));
                received.burst.setBit(pin, beat,
                                      !received.burst.getBit(pin, beat));
            }
        }
    } else {
        // An erroneous command turned into a WR: the controller drives
        // nothing, and the device interprets the undriven bus (random
        // or termination-pulled levels) as data and CRC (§IV-C).
        if (oc.garbageBusWrites)
            ++*oc.garbageBusWrites;
        received.burst.randomize(garbage);
        for (auto &c : received.crc)
            c = static_cast<uint8_t>(garbage.below(256));
        received.crcValid = true;
    }

    // Write CRC check happens before the array is touched (early
    // detection, §IV-B).  The device computes the reference CRC from
    // the data it received and, for eWCRC, from *its own* view of the
    // target MTB address.
    if (cfg.wcrcMode != WcrcMode::Off && bank.open && !modeCorrupt) {
        const MtbAddress devAddr = deviceAddress(cmd, bank);
        const bool withAddr = cfg.wcrcMode == WcrcMode::DataAddress;
        const uint64_t addrField =
            static_cast<uint64_t>(devAddr.pack(cfg.geom)) << 32;
        bool mismatch = false;
        for (unsigned chip = 0; chip < Burst::numChips && !mismatch;
             ++chip) {
            // The covered word is the chip's 32 data bits, extended by
            // the device's view of the MTB address for eWCRC; both are
            // consumed MSB-first, exactly as the bit-vector form was.
            const uint64_t lane = received.burst.chipWord(chip);
            const uint8_t expect = static_cast<uint8_t>(
                withAddr
                    ? Crc::ddr4Crc8().computeWord(lane | addrField, 64)
                    : Crc::ddr4Crc8().computeWord(lane, 32));
            const uint8_t got =
                received.crcValid ? received.crc[chip] : expect;
            mismatch = expect != got;
        }
        if (mismatch) {
            if (oc.wcrcAlerts)
                ++*oc.wcrcAlerts;
            std::ostringstream detail;
            detail << "write CRC mismatch at " << devAddr.toString();
            result.alerts.push_back({AlertKind::Wcrc, now, detail.str(),
                                     devAddr.flatBank(cfg.geom)});
            // The write is blocked: no array mutation.
            return;
        }
    }

    if (!bank.open) {
        // No word line is raised: the write never lands.  The intended
        // destination silently keeps stale data.
        if (oc.droppedWrites)
            ++*oc.droppedWrites;
        return;
    }

    const MtbAddress addr = deviceAddress(cmd, bank);
    Burst toStore = received.burst;
    const unsigned shift = cmd.col & mask(Geometry::burstBits);
    if (shift)
        toStore = rotateBeats(toStore, 8 - shift);
    if (modeCorrupt) {
        // Misconfigured burst length / latency scrambles the beats.
        toStore.randomize(garbage);
    }
    store.put(addr.pack(cfg.geom), toStore);
    result.arrayMutated = true;

    if (cmd.autoPrecharge)
        bank.open = false;
}

} // namespace aiecc
