/**
 * @file
 * Agglomerative hierarchical clustering, used to derive the four
 * representative workload centroids of Figure 9a from per-benchmark
 * characterizations (the paper clusters across bandwidth utilization,
 * read/write ratio, CAS/ACT ratio and ACT->RD / ACT->WR ratio).
 */

#ifndef AIECC_RELIABILITY_CLUSTER_HH
#define AIECC_RELIABILITY_CLUSTER_HH

#include <cstddef>
#include <vector>

namespace aiecc
{

/** One clustering result: members and centroid per cluster. */
struct Clustering
{
    /** cluster -> indices of its member points. */
    std::vector<std::vector<size_t>> members;
    /** cluster -> centroid in the (normalized) feature space. */
    std::vector<std::vector<double>> centroids;

    size_t numClusters() const { return members.size(); }

    /** Member index whose point lies closest to the cluster centroid. */
    size_t medianMember(size_t cluster,
                        const std::vector<std::vector<double>> &points)
        const;
};

/**
 * Average-linkage agglomerative clustering into @p k clusters.
 *
 * Features are min-max normalized per dimension before distances are
 * computed, so heterogeneous scales (utilization fractions vs ratios)
 * contribute comparably.
 *
 * @param points One feature vector per item (all the same length).
 * @param k Target cluster count, 1 <= k <= points.size().
 */
Clustering hierarchicalCluster(
    const std::vector<std::vector<double>> &points, size_t k);

} // namespace aiecc

#endif // AIECC_RELIABILITY_CLUSTER_HH
