# Empty dependencies file for test_edecc.
# This may be replaced when dependencies are built.
