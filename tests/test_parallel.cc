/**
 * @file
 * Tests for the shard-parallel execution primitives: the fixed-size
 * shard decomposition arithmetic, the worker-count resolution, and
 * the runShards() contract (every index exactly once, inline index
 * order at one worker, full coverage under contention).
 */

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"

namespace aiecc
{
namespace
{

// ---- shardCount / shardLength arithmetic ----

TEST(ShardMath, ExactMultiple)
{
    EXPECT_EQ(shardCount(1000, 100), 10u);
    for (uint64_t s = 0; s < 10; ++s)
        EXPECT_EQ(shardLength(1000, 100, s), 100u) << s;
    EXPECT_EQ(shardLength(1000, 100, 10), 0u); // past the end
}

TEST(ShardMath, ShortFinalShard)
{
    EXPECT_EQ(shardCount(1001, 100), 11u);
    EXPECT_EQ(shardLength(1001, 100, 9), 100u);
    EXPECT_EQ(shardLength(1001, 100, 10), 1u);
    EXPECT_EQ(shardCount(99, 100), 1u);
    EXPECT_EQ(shardLength(99, 100, 0), 99u);
}

TEST(ShardMath, ZeroTotalHasNoShards)
{
    EXPECT_EQ(shardCount(0, 100), 0u);
    EXPECT_EQ(shardLength(0, 100, 0), 0u);
}

TEST(ShardMath, ZeroShardSizeDegradesToOneShard)
{
    // A defensive guard, not a supported configuration: everything
    // lands in one shard instead of dividing by zero.
    EXPECT_EQ(shardCount(42, 0), 1u);
    EXPECT_EQ(shardCount(0, 0), 0u);
}

TEST(ShardMath, LengthsSumToTotal)
{
    for (uint64_t total : {0ull, 1ull, 7ull, 100ull, 1001ull, 4096ull}) {
        for (uint64_t size : {1ull, 3ull, 100ull, 5000ull}) {
            uint64_t sum = 0;
            const uint64_t shards = shardCount(total, size);
            for (uint64_t s = 0; s < shards; ++s) {
                const uint64_t len = shardLength(total, size, s);
                EXPECT_GE(len, 1u) << "empty shard " << s << " of "
                                   << shards;
                sum += len;
            }
            EXPECT_EQ(sum, total) << total << "/" << size;
        }
    }
}

// ---- worker-count resolution ----

TEST(ResolveJobs, ZeroMeansHardwareAuto)
{
    EXPECT_EQ(resolveJobs(0), hardwareJobs());
    EXPECT_GE(hardwareJobs(), 1u);
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);
}

// ---- runShards ----

TEST(RunShards, SingleWorkerRunsInlineInOrder)
{
    std::vector<uint64_t> order;
    runShards(8, 1, [&](uint64_t shard) { order.push_back(shard); });
    ASSERT_EQ(order.size(), 8u);
    for (uint64_t s = 0; s < 8; ++s)
        EXPECT_EQ(order[s], s);
}

TEST(RunShards, EveryShardExactlyOnceUnderContention)
{
    constexpr uint64_t shards = 200;
    std::vector<std::atomic<unsigned>> hits(shards);
    runShards(shards, 8, [&](uint64_t shard) {
        hits[shard].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint64_t s = 0; s < shards; ++s)
        EXPECT_EQ(hits[s].load(), 1u) << "shard " << s;
}

TEST(RunShards, MoreJobsThanShards)
{
    std::vector<std::atomic<unsigned>> hits(3);
    runShards(3, 16, [&](uint64_t shard) {
        hits[shard].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint64_t s = 0; s < 3; ++s)
        EXPECT_EQ(hits[s].load(), 1u);
}

TEST(RunShards, ZeroShardsNeverInvokes)
{
    bool invoked = false;
    runShards(0, 4, [&](uint64_t) { invoked = true; });
    EXPECT_FALSE(invoked);
}

TEST(RunShards, SlotWritesAreVisibleAfterJoin)
{
    // The canonical usage: each shard fills its own output slot; the
    // join must publish every write to the caller.
    constexpr uint64_t shards = 64;
    std::vector<uint64_t> slots(shards, 0);
    runShards(shards, 4,
              [&](uint64_t shard) { slots[shard] = shard * shard + 1; });
    for (uint64_t s = 0; s < shards; ++s)
        EXPECT_EQ(slots[s], s * s + 1) << s;
}

} // namespace
} // namespace aiecc
