/**
 * @file
 * Unit tests for the DRAM rank model: normal operation, the erroneous
 * command semantics of Section II-C (duplicate ACT, reads/writes to
 * idle banks, extra writes, MRS corruption), and the device-side
 * checkers (CA parity, WCRC/eWCRC, CSTC gating).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "crc/crc.hh"
#include "dram/rank.hh"

namespace aiecc
{
namespace
{

Burst
patternBurst(uint64_t seed)
{
    Rng rng(seed);
    Burst b;
    b.randomize(rng);
    return b;
}

WriteData
makeWd(const RankConfig &cfg, const Burst &burst, const MtbAddress &addr)
{
    WriteData wd;
    wd.burst = burst;
    wd.crcValid = cfg.wcrcMode != WcrcMode::Off;
    for (unsigned chip = 0; chip < Burst::numChips; ++chip) {
        BitVec covered = burst.chipBits(chip);
        if (cfg.wcrcMode == WcrcMode::DataAddress) {
            BitVec withAddr(covered.size() + 32);
            withAddr.insert(0, covered);
            withAddr.setField(covered.size(), 32, addr.pack(cfg.geom));
            covered = withAddr;
        }
        wd.crc[chip] =
            static_cast<uint8_t>(Crc::ddr4Crc8().compute(covered));
    }
    return wd;
}

class RankTest : public ::testing::Test
{
  protected:
    RankConfig cfg;
    Cycle now = 100;

    ExecResult
    step(DramRank &rank, const Command &cmd,
         const std::optional<WriteData> &wd = std::nullopt)
    {
        auto pins = encodeCommand(cmd);
        if (cfg.parityMode != ParityMode::Off) {
            driveParity(pins, cfg.parityMode == ParityMode::ECap
                                  ? ctrlWrt
                                  : false);
        }
        if (cfg.parityMode == ParityMode::ECap && cmd.type == CmdType::Wr)
            ctrlWrt = !ctrlWrt;
        now += 500; // generously satisfy all timing
        return rank.step(now, pins, wd);
    }

    bool ctrlWrt = false;
};

TEST_F(RankTest, ActOpensBank)
{
    DramRank rank(cfg);
    EXPECT_FALSE(rank.bankOpen(1, 2));
    step(rank, Command::act(1, 2, 0x55));
    EXPECT_TRUE(rank.bankOpen(1, 2));
    EXPECT_EQ(rank.openRow(1, 2), 0x55u);
}

TEST_F(RankTest, WriteThenReadRoundTrip)
{
    DramRank rank(cfg);
    const Burst data = patternBurst(1);
    step(rank, Command::act(0, 0, 7));
    MtbAddress addr{0, 0, 0, 7, 2};
    auto wr = step(rank, Command::wr(0, 0, 2 << 3),
                   makeWd(cfg, data, addr));
    EXPECT_TRUE(wr.arrayMutated);
    auto rd = step(rank, Command::rd(0, 0, 2 << 3));
    ASSERT_TRUE(rd.readData.has_value());
    EXPECT_EQ(*rd.readData, data);
}

TEST_F(RankTest, PrechargeClosesBank)
{
    DramRank rank(cfg);
    step(rank, Command::act(0, 0, 7));
    step(rank, Command::pre(0, 0));
    EXPECT_FALSE(rank.bankOpen(0, 0));
}

TEST_F(RankTest, AutoPrechargeCloses)
{
    DramRank rank(cfg);
    step(rank, Command::act(0, 0, 7));
    step(rank, Command::rd(0, 0, 0, /*ap=*/true));
    EXPECT_FALSE(rank.bankOpen(0, 0));
}

TEST_F(RankTest, ReadFromIdleBankReturnsGarbageWithoutMutation)
{
    DramRank rank(cfg);
    const MtbAddress probe{0, 0, 0, 7, 0};
    const Burst before = rank.peek(probe);
    auto rd = step(rank, Command::rd(0, 0, 0));
    ASSERT_TRUE(rd.readData.has_value());
    EXPECT_FALSE(rd.arrayMutated);
    // Storage unchanged.
    EXPECT_EQ(rank.peek(probe), before);
}

TEST_F(RankTest, WriteToIdleBankIsSilentlyDropped)
{
    DramRank rank(cfg);
    const MtbAddress addr{0, 0, 0, 7, 2};
    const Burst before = rank.peek(addr);
    auto wr = step(rank, Command::wr(0, 0, 2 << 3),
                   makeWd(cfg, patternBurst(2), addr));
    EXPECT_FALSE(wr.arrayMutated);
    EXPECT_TRUE(wr.alerts.empty());
    EXPECT_EQ(rank.peek(addr), before);
}

TEST_F(RankTest, DuplicateActCopiesOpenRow)
{
    // Figure 3c: ACT row A, write, then erroneous ACT row B on the
    // same open bank clobbers row B with row A's content.
    DramRank rank(cfg);
    const Burst dataA = patternBurst(3);
    const Burst dataB = patternBurst(4);
    // Establish distinct contents in rows A=10 and B=20.
    rank.poke(MtbAddress{0, 0, 0, 10, 5}, dataA);
    rank.poke(MtbAddress{0, 0, 0, 20, 5}, dataB);

    step(rank, Command::act(0, 0, 10));
    auto res = step(rank, Command::act(0, 0, 20)); // duplicate ACT
    EXPECT_TRUE(res.arrayMutated);
    EXPECT_EQ(rank.peek(MtbAddress{0, 0, 0, 20, 5}), dataA);
    // Row A is untouched.
    EXPECT_EQ(rank.peek(MtbAddress{0, 0, 0, 10, 5}), dataA);
    // The bank now presents row B (holding A's data).
    EXPECT_EQ(rank.openRow(0, 0), 20u);
}

TEST_F(RankTest, DuplicateActSameRowHarmless)
{
    DramRank rank(cfg);
    rank.poke(MtbAddress{0, 0, 0, 10, 5}, patternBurst(5));
    step(rank, Command::act(0, 0, 10));
    auto res = step(rank, Command::act(0, 0, 10));
    EXPECT_FALSE(res.arrayMutated);
}

TEST_F(RankTest, ExtraWriteLatchesGarbageBus)
{
    // An altered command became WR: no controller data accompanies it,
    // so the device writes undriven-bus garbage (§IV-C).
    DramRank rank(cfg);
    const Burst good = patternBurst(6);
    rank.poke(MtbAddress{0, 0, 0, 7, 2}, good);
    step(rank, Command::act(0, 0, 7));
    auto res = step(rank, Command::wr(0, 0, 2 << 3), std::nullopt);
    EXPECT_TRUE(res.arrayMutated);
    EXPECT_NE(rank.peek(MtbAddress{0, 0, 0, 7, 2}), good);
}

TEST_F(RankTest, ExtraWriteCaughtByWcrc)
{
    // With write CRC enabled the garbage CRC mismatches and the array
    // is protected.
    cfg.wcrcMode = WcrcMode::Data;
    DramRank rank(cfg);
    const Burst good = patternBurst(7);
    rank.poke(MtbAddress{0, 0, 0, 7, 2}, good);
    step(rank, Command::act(0, 0, 7));
    auto res = step(rank, Command::wr(0, 0, 2 << 3), std::nullopt);
    ASSERT_EQ(res.alerts.size(), 1u);
    EXPECT_EQ(res.alerts[0].kind, AlertKind::Wcrc);
    EXPECT_FALSE(res.arrayMutated);
    EXPECT_EQ(rank.peek(MtbAddress{0, 0, 0, 7, 2}), good);
}

TEST_F(RankTest, MrsCorruptsDevice)
{
    DramRank rank(cfg);
    const Burst good = patternBurst(8);
    rank.poke(MtbAddress{0, 0, 0, 7, 2}, good);
    step(rank, Command::act(0, 0, 7));
    Command mrs;
    mrs.type = CmdType::Mrs;
    step(rank, mrs);
    EXPECT_TRUE(rank.modeCorrupted());
    auto rd = step(rank, Command::rd(0, 0, 2 << 3));
    ASSERT_TRUE(rd.readData.has_value());
    EXPECT_NE(*rd.readData, good);
}

TEST_F(RankTest, BaseWcrcAcceptsMatchingWrite)
{
    cfg.wcrcMode = WcrcMode::Data;
    DramRank rank(cfg);
    step(rank, Command::act(0, 0, 7));
    const MtbAddress addr{0, 0, 0, 7, 2};
    auto res = step(rank, Command::wr(0, 0, 2 << 3),
                    makeWd(cfg, patternBurst(9), addr));
    EXPECT_TRUE(res.alerts.empty());
    EXPECT_TRUE(res.arrayMutated);
}

TEST_F(RankTest, BaseWcrcMissesAddressErrors)
{
    // Plain WCRC covers only data: a wrong-column write sails through
    // (the DDR4 weakness eWCRC fixes).
    cfg.wcrcMode = WcrcMode::Data;
    DramRank rank(cfg);
    step(rank, Command::act(0, 0, 7));
    const MtbAddress intended{0, 0, 0, 7, 2};
    // The command's column got corrupted to 3 in flight.
    auto res = step(rank, Command::wr(0, 0, 3 << 3),
                    makeWd(cfg, patternBurst(10), intended));
    EXPECT_TRUE(res.alerts.empty());
    EXPECT_TRUE(res.arrayMutated);
}

TEST_F(RankTest, EWcrcDetectsColumnError)
{
    cfg.wcrcMode = WcrcMode::DataAddress;
    DramRank rank(cfg);
    step(rank, Command::act(0, 0, 7));
    const MtbAddress intended{0, 0, 0, 7, 2};
    auto res = step(rank, Command::wr(0, 0, 3 << 3),
                    makeWd(cfg, patternBurst(11), intended));
    ASSERT_EQ(res.alerts.size(), 1u);
    EXPECT_EQ(res.alerts[0].kind, AlertKind::Wcrc);
    EXPECT_FALSE(res.arrayMutated);
}

TEST_F(RankTest, EWcrcDetectsWrongOpenRow)
{
    // An earlier erroneous ACT opened row 9 instead of row 7; the
    // device-side address check on the next write exposes it.
    cfg.wcrcMode = WcrcMode::DataAddress;
    DramRank rank(cfg);
    step(rank, Command::act(0, 0, 9)); // controller intended row 7
    const MtbAddress intended{0, 0, 0, 7, 2};
    auto res = step(rank, Command::wr(0, 0, 2 << 3),
                    makeWd(cfg, patternBurst(12), intended));
    ASSERT_EQ(res.alerts.size(), 1u);
    EXPECT_EQ(res.alerts[0].kind, AlertKind::Wcrc);
}

TEST_F(RankTest, CapBlocksCommandOnParityError)
{
    cfg.parityMode = ParityMode::Cap;
    DramRank rank(cfg);
    auto pins = encodeCommand(Command::act(0, 0, 7));
    driveParity(pins, false);
    pins.flip(Pin::A3); // 1-pin CMD/ADD error
    auto res = rank.step(500, pins);
    ASSERT_EQ(res.alerts.size(), 1u);
    EXPECT_EQ(res.alerts[0].kind, AlertKind::CaParity);
    EXPECT_FALSE(rank.bankOpen(0, 0));
}

TEST_F(RankTest, CapMissesTwoPinErrors)
{
    cfg.parityMode = ParityMode::Cap;
    DramRank rank(cfg);
    auto pins = encodeCommand(Command::act(0, 0, 7));
    driveParity(pins, false);
    pins.flip(Pin::A3);
    pins.flip(Pin::A4);
    auto res = rank.step(500, pins);
    EXPECT_TRUE(res.alerts.empty());
    EXPECT_TRUE(rank.bankOpen(0, 0));
    EXPECT_EQ(rank.openRow(0, 0), 7u ^ 8u ^ 16u);
}

TEST_F(RankTest, ECapWrtTogglesOnWrite)
{
    cfg.parityMode = ParityMode::ECap;
    DramRank rank(cfg);
    EXPECT_FALSE(rank.wrtBit());
    step(rank, Command::act(0, 0, 7));
    EXPECT_FALSE(rank.wrtBit());
    const MtbAddress addr{0, 0, 0, 7, 2};
    step(rank, Command::wr(0, 0, 2 << 3),
         makeWd(cfg, patternBurst(13), addr));
    EXPECT_TRUE(rank.wrtBit());
}

TEST_F(RankTest, ECapDetectsMissingWriteAtNextCommand)
{
    // The §IV-D scenario: a WR is lost in flight (CS error), so the
    // device's WRT lags the controller's; the very next command's
    // parity mismatches.
    cfg.parityMode = ParityMode::ECap;
    DramRank rank(cfg);
    step(rank, Command::act(0, 0, 7));

    // Controller sends WR (toggling its WRT) but the command is lost.
    auto lostPins = encodeCommand(Command::wr(0, 0, 2 << 3));
    driveParity(lostPins, ctrlWrt);
    ctrlWrt = !ctrlWrt;
    lostPins.flip(Pin::CS); // deselect: DRAM never sees the WR
    auto res1 = rank.step(700, lostPins);
    EXPECT_TRUE(res1.alerts.empty());
    EXPECT_FALSE(rank.wrtBit());

    // Next command carries parity computed with the controller's WRT.
    auto res2 = step(rank, Command::rd(0, 0, 2 << 3));
    ASSERT_EQ(res2.alerts.size(), 1u);
    EXPECT_EQ(res2.alerts[0].kind, AlertKind::CaParity);
}

TEST_F(RankTest, CstcBlocksDuplicateAct)
{
    cfg.cstcEnabled = true;
    DramRank rank(cfg);
    rank.poke(MtbAddress{0, 0, 0, 20, 5}, patternBurst(14));
    const Burst before = rank.peek(MtbAddress{0, 0, 0, 20, 5});
    step(rank, Command::act(0, 0, 10));
    auto res = step(rank, Command::act(0, 0, 20));
    ASSERT_EQ(res.alerts.size(), 1u);
    EXPECT_EQ(res.alerts[0].kind, AlertKind::Cstc);
    // Row B survives.
    EXPECT_EQ(rank.peek(MtbAddress{0, 0, 0, 20, 5}), before);
}

TEST_F(RankTest, CstcBlocksReadToIdleBank)
{
    cfg.cstcEnabled = true;
    DramRank rank(cfg);
    auto res = step(rank, Command::rd(0, 0, 0));
    ASSERT_EQ(res.alerts.size(), 1u);
    EXPECT_EQ(res.alerts[0].kind, AlertKind::Cstc);
    EXPECT_FALSE(res.readData.has_value());
}

TEST_F(RankTest, CkeGlitchEntersPowerDown)
{
    DramRank rank(cfg);
    auto pins = encodeCommand(Command::act(0, 0, 7));
    pins.flip(Pin::CKE);
    auto res = rank.step(500, pins);
    EXPECT_FALSE(res.decoded.executed);
    EXPECT_TRUE(rank.inPowerDown());
    EXPECT_FALSE(rank.bankOpen(0, 0));

    // The next (CKE-high) command wakes the device and executes.
    auto res2 = rank.step(500 + cfg.timing.tXP,
                          encodeCommand(Command::act(0, 0, 7)));
    EXPECT_TRUE(res2.executed);
    EXPECT_FALSE(rank.inPowerDown());
    EXPECT_TRUE(rank.bankOpen(0, 0));
}

TEST_F(RankTest, CstcFlagsTooEarlyWakeAfterCkeGlitch)
{
    // The controller never intended the power-down, so its next
    // command lands inside tXP — a timing breach the CSTC reports
    // (the paper lists CSTC among the detectors of CKE errors, §IV-E).
    cfg.cstcEnabled = true;
    DramRank rank(cfg);
    auto pins = encodeCommand(Command::act(0, 0, 7));
    pins.flip(Pin::CKE);
    rank.step(500, pins);
    ASSERT_TRUE(rank.inPowerDown());

    auto res = rank.step(502, encodeCommand(Command::act(0, 0, 7)));
    ASSERT_EQ(res.alerts.size(), 1u);
    EXPECT_EQ(res.alerts[0].kind, AlertKind::Cstc);
    EXPECT_FALSE(rank.bankOpen(0, 0));

    // Past tXP, commands proceed normally.
    auto res2 = rank.step(502 + cfg.timing.tXP,
                          encodeCommand(Command::act(0, 0, 7)));
    EXPECT_TRUE(res2.alerts.empty());
    EXPECT_TRUE(rank.bankOpen(0, 0));
}

TEST_F(RankTest, PokePeekBackdoor)
{
    DramRank rank(cfg);
    const Burst b = patternBurst(15);
    const MtbAddress addr{0, 3, 1, 42, 9};
    rank.poke(addr, b);
    EXPECT_EQ(rank.peek(addr), b);
    EXPECT_EQ(rank.storedAddresses().size(), 1u);
    EXPECT_EQ(rank.storedAddresses()[0], addr);
}

TEST_F(RankTest, DefaultFillIsDeterministicAndAddressDependent)
{
    DramRank rank1(cfg), rank2(cfg);
    const MtbAddress a{0, 0, 0, 1, 1};
    const MtbAddress b{0, 0, 0, 1, 2};
    EXPECT_EQ(rank1.peek(a), rank2.peek(a));
    EXPECT_NE(rank1.peek(a), rank1.peek(b));
}

} // namespace
} // namespace aiecc
