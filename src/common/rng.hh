/**
 * @file
 * Deterministic pseudo-random number generation for fault injection and
 * Monte-Carlo experiments.  A self-contained xoshiro256** keeps results
 * reproducible across standard libraries.
 */

#ifndef AIECC_COMMON_RNG_HH
#define AIECC_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace aiecc
{

/**
 * xoshiro256** 1.0 pseudo-random generator (Blackman & Vigna).
 *
 * Seeded via splitmix64 so that any 64-bit seed yields a well-mixed
 * state.  Deterministic across platforms, unlike std::mt19937 paired
 * with std:: distributions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0x41454343ULL); // "AECC"

    /**
     * Deterministic stream derivation for sharded campaigns: the
     * generator for stream @p stream of base seed @p seed.  The
     * stream index is decorrelated through splitmix64 before it is
     * folded into the seed, so adjacent indices yield well-separated
     * state — shard k of a campaign always draws the same sequence no
     * matter how many worker threads execute it.  forStream(seed, a)
     * and forStream(seed, b) never alias Rng(seed) or each other for
     * a != b in any way observable at campaign scale.
     */
    static Rng forStream(uint64_t seed, uint64_t stream);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0, rejection-sampled. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Choose @p k distinct values from [0, n) (Floyd's algorithm).
     *
     * @param n Population size.
     * @param k Sample size, k <= n.
     * @return k distinct indices in unspecified order.
     */
    std::vector<unsigned> sample(unsigned n, unsigned k);

  private:
    uint64_t state[4];
};

} // namespace aiecc

#endif // AIECC_COMMON_RNG_HH
