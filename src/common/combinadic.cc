#include "common/combinadic.hh"

#include "common/logging.hh"

namespace aiecc
{

namespace
{

/**
 * C(n, k) by the exact multiplicative ladder: after step i the
 * accumulator holds C(n - k + i, i), an integer, so every division is
 * exact.  The 128-bit intermediate makes the overflow test precise.
 */
bool
binomialImpl(unsigned n, unsigned k, uint64_t &out)
{
    if (k > n) {
        out = 0;
        return true;
    }
    if (k > n - k)
        k = n - k;
    unsigned __int128 r = 1;
    for (unsigned i = 1; i <= k; ++i) {
        r = r * (n - k + i) / i;
        if (r > ~static_cast<uint64_t>(0))
            return false;
    }
    out = static_cast<uint64_t>(r);
    return true;
}

} // namespace

bool
binomialFits(unsigned n, unsigned k)
{
    uint64_t unused;
    return binomialImpl(n, k, unused);
}

uint64_t
binomial(unsigned n, unsigned k)
{
    uint64_t value;
    if (!binomialImpl(n, k, value)) {
        AIECC_PANIC("binomial(" << n << ", " << k
                                << ") overflows uint64_t");
    }
    return value;
}

CombinationSpace::CombinationSpace(unsigned n, unsigned k)
    : setSize(n), comboSize(k), count(binomial(n, k))
{
    if (k > n) {
        AIECC_PANIC("combination space needs k <= n, got C("
                    << n << ", " << k << ")");
    }
}

void
CombinationSpace::unrank(uint64_t rank, unsigned *out) const
{
    if (rank >= count) {
        AIECC_PANIC("combination rank " << rank << " out of range [0, "
                                        << count << ")");
    }
    // Walk candidate elements in ascending order; taking value v as
    // the next element covers C(n - 1 - v, remaining) combinations,
    // so skip whole blocks until the rank falls inside one.
    unsigned v = 0;
    for (unsigned i = 0; i < comboSize; ++i) {
        for (;;) {
            const uint64_t block =
                binomial(setSize - 1 - v, comboSize - 1 - i);
            if (rank < block)
                break;
            rank -= block;
            ++v;
        }
        out[i] = v++;
    }
}

std::vector<unsigned>
CombinationSpace::unrank(uint64_t rank) const
{
    std::vector<unsigned> combo(comboSize);
    unrank(rank, combo.data());
    return combo;
}

uint64_t
CombinationSpace::rank(const unsigned *combo) const
{
    uint64_t r = 0;
    unsigned prev = 0;
    for (unsigned i = 0; i < comboSize; ++i) {
        if (combo[i] >= setSize ||
            (i > 0 && combo[i] <= combo[i - 1])) {
            AIECC_PANIC("rank() needs strictly ascending elements "
                        "below " << setSize);
        }
        // Every combination whose i'th element is some v < combo[i]
        // (and whose prefix matches) ranks earlier.
        for (unsigned v = prev; v < combo[i]; ++v)
            r += binomial(setSize - 1 - v, comboSize - 1 - i);
        prev = combo[i] + 1;
    }
    return r;
}

uint64_t
CombinationSpace::rank(const std::vector<unsigned> &combo) const
{
    if (combo.size() != comboSize)
        AIECC_PANIC("rank() needs exactly " << comboSize << " elements");
    return rank(combo.data());
}

} // namespace aiecc
