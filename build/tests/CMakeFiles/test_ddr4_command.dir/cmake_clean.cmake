file(REMOVE_RECURSE
  "CMakeFiles/test_ddr4_command.dir/test_ddr4_command.cc.o"
  "CMakeFiles/test_ddr4_command.dir/test_ddr4_command.cc.o.d"
  "test_ddr4_command"
  "test_ddr4_command.pdb"
  "test_ddr4_command[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddr4_command.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
