#include "aiecc/cost_model.hh"

#include "ddr4/burst.hh"

namespace aiecc
{

namespace
{

// Modeled compute rates, after the Ramulator2 ECC plugin's per-byte
// latency parameters (ECC_COMPUTE_PER_BYTE_NS = 0.02,
// EDC_COMPUTE_PER_BYTE_NS = 0.01), in integer picoseconds per byte.
constexpr uint64_t eccComputePsPerByte = 20;
constexpr uint64_t crcComputePsPerByte = 10;

// DDR4-2400 command clock: 1200 MHz, 833 ps per cycle.
constexpr uint64_t ddr4TckPs = 833;

// CA-parity XOR tree spans one ~32-bit command pin word.
constexpr uint64_t caPinWordBytes = 4;

// CSTC per-edge work: FSM transition plus one timing-table check,
// modeled as 50 ps (well under a command clock — the checker runs in
// parallel with the command pipeline).
constexpr uint64_t cstcCheckPs = 50;

} // namespace

obs::CostModel
makeCostModel(const Mechanisms &mech)
{
    obs::CostModel m;
    m.caParity = mech.parity != ParityMode::Off;
    m.extendedCa = mech.parity == ParityMode::ECap;
    m.wcrc = mech.wcrc != WcrcMode::Off;
    m.extendedWcrc = mech.wcrc == WcrcMode::DataAddress;
    m.cstc = mech.cstc;
    m.tckPs = ddr4TckPs;
    m.dataBusBitsPerAccess = Burst::dataBits;

    if (auto codec = makeEcc(mech.ecc)) {
        m.dataEcc = true;
        m.addrEcc = codec->protectsAddress();
        m.eccName = codec->name();
        m.eccStorageBitsPerBlock = codec->redundancyBits();
        // The 8 check pins toggle on every beat of every data access.
        m.eccBusBitsPerAccess = Burst::checkPins * Burst::numBeats;
        m.eccEncodePsPerWrite =
            eccComputePsPerByte * (Burst::dataBits / 8);
        m.eccDecodePsPerRead = m.eccEncodePsPerWrite;
        // eDECC folds the 32-bit MTB address into the codeword: four
        // extra covered bytes per encode/decode, zero extra bits.
        if (m.addrEcc)
            m.addrFoldPsPerAccess = eccComputePsPerByte * 4;
    }

    if (m.caParity) {
        // One PAR pin bit rides every command edge.
        m.caBusBitsPerCommand = 1;
        m.caParityPsPerCommand = crcComputePsPerByte * caPinWordBytes;
    }

    if (m.wcrc) {
        // JEDEC write CRC extends the burst BL8 -> BL10: two extra
        // beats across all 72 DQ pins per write.
        m.wcrcBusBitsPerWrite = Burst::numPins * 2;
        // The CRC covers each chip's 32-bit lane (72 B per burst);
        // eWCRC additionally folds the 32-bit MTB address into every
        // chip's CRC (18 x 4 further covered bytes).
        uint64_t coveredBytes = Burst::numChips * 4;
        if (m.extendedWcrc)
            coveredBytes += Burst::numChips * 4;
        m.wcrcComputePsPerWrite = crcComputePsPerByte * coveredBytes;
    }

    if (m.cstc)
        m.cstcCheckPsPerCommand = cstcCheckPs;

    return m;
}

} // namespace aiecc
