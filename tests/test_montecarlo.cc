/**
 * @file
 * Tests for the Table III Monte-Carlo engine: the qualitative cells
 * of the paper's data-reliability comparison must reproduce.
 */

#include <string>

#include <gtest/gtest.h>

#include "inject/montecarlo.hh"
#include "obs/stats.hh"

namespace aiecc
{
namespace
{

constexpr uint64_t kTrials = 3000;

/**
 * A plain bounded-distance RS(72,64) decoder miscorrects random
 * beyond-capability garbage with probability ~sum_i C(72,i)*255^i /
 * 255^8 ~ 2.4e-4; the paper's "<1e-6%" cells imply extra screening in
 * their decoder.  Tests on those cells allow our textbook floor
 * (documented in EXPERIMENTS.md).
 */
constexpr double kMiscorrectionFloor = 2.4e-4;

/** Binomial-tail-safe bound on miscorrections over n trials. */
uint64_t
floorBudget(uint64_t n)
{
    return static_cast<uint64_t>(n * kMiscorrectionFloor * 8) + 4;
}

TEST(MonteCarlo, NoErrorIsNoError)
{
    for (EccScheme scheme :
         {EccScheme::Qpc, EccScheme::AzulQpc,
          EccScheme::EDeccTransformQpc, EccScheme::EDeccQpc}) {
        DataMonteCarlo mc(scheme);
        const auto cell = mc.runCell(DataErrorModel::None,
                                     AddrErrorModel::None, 200);
        EXPECT_EQ(cell.count(DataOutcome::NoError), 200u)
            << eccSchemeName(scheme);
    }
}

TEST(MonteCarlo, QpcAddressErrorsAre100PercentSdc)
{
    // Table III row "None / 1 bit": data-only QPC sees nothing.
    DataMonteCarlo mc(EccScheme::Qpc);
    const auto cell =
        mc.runCell(DataErrorModel::None, AddrErrorModel::Bit1, 500);
    EXPECT_DOUBLE_EQ(cell.sdcFrac(), 1.0);
}

TEST(MonteCarlo, QpcCorrectsPureDataErrors)
{
    DataMonteCarlo mc(EccScheme::Qpc);
    for (auto model : {DataErrorModel::Bit1, DataErrorModel::Chip1}) {
        const auto cell =
            mc.runCell(model, AddrErrorModel::None, 500);
        EXPECT_EQ(cell.count(DataOutcome::CeD), 500u);
    }
}

TEST(MonteCarlo, AzulAliasesNear6Point3Percent)
{
    // Table III "None / 32 bits" for QPC+Azul: 6.3% SDC.
    DataMonteCarlo mc(EccScheme::AzulQpc);
    const auto cell =
        mc.runCell(DataErrorModel::None, AddrErrorModel::Bits32, kTrials);
    EXPECT_NEAR(cell.sdcFrac(), 1.0 / 16.0, 0.02);
}

TEST(MonteCarlo, AzulOneBitAddressIsCeR)
{
    // Table III "None / 1 bit" for QPC+Azul: CE-R (no SDC).
    DataMonteCarlo mc(EccScheme::AzulQpc);
    const auto cell =
        mc.runCell(DataErrorModel::None, AddrErrorModel::Bit1, 1000);
    EXPECT_DOUBLE_EQ(cell.sdcFrac(), 0.0);
    EXPECT_EQ(cell.dominant(), DataOutcome::CeR);
}

TEST(MonteCarlo, TransformDetectsAllAddressErrors)
{
    // Table III eDECC-t column: CE-R for pure address errors.
    DataMonteCarlo mc(EccScheme::EDeccTransformQpc);
    for (auto model : {AddrErrorModel::Bit1, AddrErrorModel::Bits32}) {
        const auto cell =
            mc.runCell(DataErrorModel::None, model, 2000);
        EXPECT_LE(cell.count(DataOutcome::Sdc), floorBudget(2000))
            << addrErrorName(model);
        EXPECT_EQ(cell.dominant(), DataOutcome::CeR);
    }
}

TEST(MonteCarlo, CombinedEDeccDiagnosesAddressErrors)
{
    // Table III eDECC-c column: CE-R+ (precise diagnosis).
    DataMonteCarlo mc(EccScheme::EDeccQpc);
    for (auto model : {AddrErrorModel::Bit1, AddrErrorModel::Bits32}) {
        const auto cell =
            mc.runCell(DataErrorModel::None, model, 1000);
        EXPECT_DOUBLE_EQ(cell.sdcFrac(), 0.0) << addrErrorName(model);
        EXPECT_EQ(cell.dominant(), DataOutcome::CeRPlus);
    }
}

TEST(MonteCarlo, CombinedEDeccBitPlusBitIsCeRDPlus)
{
    // Table III "1 bit / 1 bit" for eDECC-c: CE-RD+.
    DataMonteCarlo mc(EccScheme::EDeccQpc);
    const auto cell =
        mc.runCell(DataErrorModel::Bit1, AddrErrorModel::Bit1, 1000);
    EXPECT_DOUBLE_EQ(cell.sdcFrac(), 0.0);
    EXPECT_EQ(cell.dominant(), DataOutcome::CeRDPlus);
}

TEST(MonteCarlo, ChipPlusAddressErrorNeverSilent)
{
    // Table III "1 chip / 1 bit": <1e-6% SDC for every
    // address-protecting scheme (detected, though uncorrectable).
    for (EccScheme scheme :
         {EccScheme::AzulQpc, EccScheme::EDeccTransformQpc,
          EccScheme::EDeccQpc}) {
        DataMonteCarlo mc(scheme);
        const auto cell = mc.runCell(DataErrorModel::Chip1,
                                     AddrErrorModel::Bit1, kTrials);
        EXPECT_LE(cell.count(DataOutcome::Sdc), floorBudget(kTrials))
            << eccSchemeName(scheme);
    }
}

TEST(MonteCarlo, ChipPlus32BitAddressAliasesOnlyForAzul)
{
    // Table III "1 chip / 32 bits": 6.3% for Azul, ~0 for eDECC.
    DataMonteCarlo azul(EccScheme::AzulQpc);
    const auto azulCell = azul.runCell(DataErrorModel::Chip1,
                                       AddrErrorModel::Bits32, kTrials);
    EXPECT_NEAR(azulCell.sdcFrac(), 1.0 / 16.0, 0.02);

    DataMonteCarlo edecc(EccScheme::EDeccQpc);
    const auto edeccCell = edecc.runCell(DataErrorModel::Chip1,
                                         AddrErrorModel::Bits32, kTrials);
    EXPECT_LE(edeccCell.count(DataOutcome::Sdc), floorBudget(kTrials));
}

TEST(MonteCarlo, RankErrorsAreDueEverywhere)
{
    // Table III bottom row: full-rank errors are detected (<1e-6% SDC)
    // by every scheme.
    for (EccScheme scheme :
         {EccScheme::Qpc, EccScheme::AzulQpc,
          EccScheme::EDeccTransformQpc, EccScheme::EDeccQpc}) {
        DataMonteCarlo mc(scheme);
        const auto cell = mc.runCell(DataErrorModel::Rank1,
                                     AddrErrorModel::None, kTrials);
        EXPECT_LE(cell.count(DataOutcome::Sdc), floorBudget(kTrials))
            << eccSchemeName(scheme);
        EXPECT_EQ(cell.dominant(), DataOutcome::Due)
            << eccSchemeName(scheme);
    }
}

TEST(MonteCarlo, ChipkillPreservedUnderEDecc)
{
    // "Any single-chip errors are still corrected (preserving
    // chipkill)" — Section V-B.
    DataMonteCarlo mc(EccScheme::EDeccQpc);
    const auto cell =
        mc.runCell(DataErrorModel::Chip1, AddrErrorModel::None, 1000);
    EXPECT_EQ(cell.count(DataOutcome::CeD), 1000u);
}

TEST(MonteCarlo, CellBookkeeping)
{
    DataMonteCarlo mc(EccScheme::Qpc);
    const auto cell =
        mc.runCell(DataErrorModel::Bit1, AddrErrorModel::None, 100);
    EXPECT_EQ(cell.trials, 100u);
    uint64_t total = 0;
    for (unsigned i = 0; i < 8; ++i)
        total += cell.counts[i];
    EXPECT_EQ(total, 100u);
}

TEST(MonteCarlo, CellMergeAddsTrialsAndCounts)
{
    MonteCarloCell a, b;
    a.add(DataOutcome::Sdc);
    a.add(DataOutcome::CeD);
    b.add(DataOutcome::CeD);
    b.add(DataOutcome::Due);
    a.merge(b);
    EXPECT_EQ(a.trials, 4u);
    EXPECT_EQ(a.count(DataOutcome::Sdc), 1u);
    EXPECT_EQ(a.count(DataOutcome::CeD), 2u);
    EXPECT_EQ(a.count(DataOutcome::Due), 1u);
}

// ---- sharded execution: bit-identical for any worker count ----

TEST(MonteCarlo, ShardedResultIndependentOfJobs)
{
    const DataErrorModel dm = DataErrorModel::Chip1;
    const AddrErrorModel am = AddrErrorModel::Bit1;
    constexpr uint64_t trials = 2500; // not a shard-size multiple
    MonteCarloCell byJobs[3];
    const unsigned jobsValues[3] = {1, 2, 8};
    for (unsigned i = 0; i < 3; ++i) {
        DataMonteCarlo mc(EccScheme::AzulQpc, 0x5EED);
        ShardPlan plan;
        plan.shardSize = 512;
        plan.jobs = jobsValues[i];
        byJobs[i] = mc.runCellSharded(dm, am, trials, plan);
    }
    for (unsigned i = 1; i < 3; ++i) {
        EXPECT_EQ(byJobs[i].trials, byJobs[0].trials)
            << "--jobs " << jobsValues[i];
        for (unsigned o = 0; o < 8; ++o)
            EXPECT_EQ(byJobs[i].counts[o], byJobs[0].counts[o])
                << "--jobs " << jobsValues[i] << " outcome " << o;
    }
    EXPECT_EQ(byJobs[0].trials, trials);
}

TEST(MonteCarlo, ShardedObserverCountsMatchCell)
{
    obs::StatsRegistry reg;
    obs::Observer observer;
    observer.setStats(&reg);
    DataMonteCarlo mc(EccScheme::EDeccQpc, 0xF00D);
    mc.setObserver(&observer);
    ShardPlan plan;
    plan.shardSize = 256;
    plan.jobs = 4;
    const auto cell = mc.runCellSharded(DataErrorModel::Bit1,
                                        AddrErrorModel::Bit1, 1000, plan);
    EXPECT_EQ(cell.trials, 1000u);
    EXPECT_EQ(reg.counterValue("montecarlo.trials"), 1000u);
    for (unsigned o = 0; o < 8; ++o) {
        const auto outcome = static_cast<DataOutcome>(o);
        EXPECT_EQ(reg.counterValue(std::string("montecarlo.outcome.") +
                                   dataOutcomeSlug(outcome)),
                  cell.counts[o])
            << dataOutcomeName(outcome);
    }
}

TEST(MonteCarlo, ShardedMatchesPaperExpectations)
{
    // The sharded path draws a different (equally valid) sample than
    // the sequential one; the physics must still come out right.
    DataMonteCarlo mc(EccScheme::AzulQpc);
    ShardPlan plan;
    plan.jobs = 2;
    const auto cell = mc.runCellSharded(DataErrorModel::None,
                                        AddrErrorModel::Bits32, kTrials,
                                        plan);
    EXPECT_NEAR(cell.sdcFrac(), 1.0 / 16.0, 0.02);
}

// ---- checkpoint state round-trip ----

TEST(MonteCarlo, CellStateRoundTripIsExact)
{
    DataMonteCarlo mc(EccScheme::AzulQpc, 0xBEEF);
    const MonteCarloCell cell =
        mc.runCell(DataErrorModel::Chip1, AddrErrorModel::Bit1, 300);
    MonteCarloCell restored;
    restored.deserializeState(cell.serializeState());
    EXPECT_EQ(restored.serializeState(), cell.serializeState());
    EXPECT_EQ(restored.trials, cell.trials);
    for (unsigned o = 0; o < 8; ++o)
        EXPECT_EQ(restored.counts[o], cell.counts[o]) << o;
}

// ---- exhaustive enumeration ----

TEST(MonteCarloExhaustive, CellSpaceSizes)
{
    using D = DataErrorModel;
    using A = AddrErrorModel;
    // 72 pins x 8 beats transferred bits; 32 MTB-address bits.
    EXPECT_EQ(DataMonteCarlo::cellSpaceSize(D::Bit1, A::None), 576u);
    EXPECT_EQ(DataMonteCarlo::cellSpaceSize(D::None, A::Bit1), 32u);
    EXPECT_EQ(DataMonteCarlo::cellSpaceSize(D::Bit1, A::Bit1), 18432u);
    // Random-word models have no finite position space.
    EXPECT_EQ(DataMonteCarlo::cellSpaceSize(D::Chip1, A::None), 0u);
    EXPECT_EQ(DataMonteCarlo::cellSpaceSize(D::Rank1, A::Bit1), 0u);
    EXPECT_EQ(DataMonteCarlo::cellSpaceSize(D::Bit1, A::Bits32), 0u);
    EXPECT_EQ(DataMonteCarlo::cellSpaceSize(D::None, A::None), 0u);
}

TEST(MonteCarloExhaustive, ResultIndependentOfJobs)
{
    MonteCarloCell byJobs[3];
    const unsigned jobsValues[3] = {1, 2, 8};
    for (unsigned i = 0; i < 3; ++i) {
        DataMonteCarlo mc(EccScheme::EDeccQpc, 0x5EED);
        ShardPlan plan;
        plan.shardSize = 64;
        plan.jobs = jobsValues[i];
        byJobs[i] = mc.runCellExhaustive(DataErrorModel::Bit1,
                                         AddrErrorModel::Bit1, plan);
    }
    EXPECT_EQ(byJobs[0].trials, 18432u);
    for (unsigned i = 1; i < 3; ++i)
        for (unsigned o = 0; o < 8; ++o)
            EXPECT_EQ(byJobs[i].counts[o], byJobs[0].counts[o])
                << "--jobs " << jobsValues[i] << " outcome " << o;
}

TEST(MonteCarloExhaustive, PureDataBitFlipsAllCorrected)
{
    // QPC corrects any single transferred-bit flip, so the full
    // 576-position enumeration must be 100% CE-D — an exact claim a
    // sampled run can only approximate.
    DataMonteCarlo mc(EccScheme::Qpc);
    ShardPlan plan;
    plan.jobs = 2;
    const auto cell = mc.runCellExhaustive(DataErrorModel::Bit1,
                                           AddrErrorModel::None, plan);
    EXPECT_EQ(cell.trials, 576u);
    EXPECT_EQ(cell.count(DataOutcome::CeD), 576u);
    EXPECT_EQ(cell.sdcFrac(), 0.0);
}

// ---- checkpointed execution ----

TEST(MonteCarloCheckpointed, SampledMatchesShardedAndLedger)
{
    const DataErrorModel dm = DataErrorModel::Bit1;
    const AddrErrorModel am = AddrErrorModel::Bit1;
    constexpr uint64_t trials = 1500;
    ShardPlan plan;
    plan.shardSize = 256;
    plan.jobs = 2;

    obs::LineageLedger refLedger;
    DataMonteCarlo ref(EccScheme::EDeccQpc, 0xACE);
    ref.setLineageLedger(&refLedger);
    const auto want = ref.runCellSharded(dm, am, trials, plan);

    clearStopRequest();
    obs::LineageLedger ledger;
    DataMonteCarlo mc(EccScheme::EDeccQpc, 0xACE);
    mc.setLineageLedger(&ledger);
    MonteCarloCell got;
    uint64_t nextShard = 0;
    ASSERT_EQ(mc.runCellCheckpointed(dm, am, trials, /*exhaustive=*/false,
                                     plan, /*batchShards=*/2, nextShard,
                                     got, [](uint64_t, uint64_t) {}),
              RunStatus::Completed);
    EXPECT_EQ(got.serializeState(), want.serializeState());
    EXPECT_EQ(ledger.digest(), refLedger.digest());
}

TEST(MonteCarloCheckpointed, InterruptAndResumeIsBitIdentical)
{
    ShardPlan plan;
    plan.shardSize = 64;
    plan.jobs = 2;

    DataMonteCarlo ref(EccScheme::AzulQpc, 0xD1CE);
    const auto want = ref.runCellExhaustive(DataErrorModel::Bit1,
                                            AddrErrorModel::None, plan);

    // Stop inside the first commit, then continue from the recorded
    // shard with the partially merged cell.
    clearStopRequest();
    DataMonteCarlo mc(EccScheme::AzulQpc, 0xD1CE);
    MonteCarloCell got;
    uint64_t nextShard = 0;
    const uint64_t space = DataMonteCarlo::cellSpaceSize(
        DataErrorModel::Bit1, AddrErrorModel::None);
    ASSERT_EQ(mc.runCellCheckpointed(
                  DataErrorModel::Bit1, AddrErrorModel::None, space,
                  /*exhaustive=*/true, plan, 2, nextShard, got,
                  [](uint64_t, uint64_t) { requestStop(); }),
              RunStatus::Interrupted);
    clearStopRequest();
    ASSERT_GT(nextShard, 0u);
    ASSERT_LT(got.trials, want.trials);

    ASSERT_EQ(mc.runCellCheckpointed(
                  DataErrorModel::Bit1, AddrErrorModel::None, space,
                  /*exhaustive=*/true, plan, 2, nextShard, got,
                  [](uint64_t, uint64_t) {}),
              RunStatus::Completed);
    EXPECT_EQ(got.serializeState(), want.serializeState());
}

} // namespace
} // namespace aiecc
