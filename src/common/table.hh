/**
 * @file
 * Plain-text table rendering used by the benches to print paper-style
 * tables and figure series to stdout.
 */

#ifndef AIECC_COMMON_TABLE_HH
#define AIECC_COMMON_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace aiecc
{

/**
 * A simple left/right-aligned ASCII table builder.
 *
 * Usage: set the header, append rows of cells, then str() renders a
 * box-drawing-free monospace table that diffs cleanly in logs.
 */
class TextTable
{
  public:
    /** Set the column headers (also fixes the column count). */
    void header(std::vector<std::string> cells);

    /** Append one row; short rows are padded with empty cells. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void separator();

    /** Render the table. */
    std::string str() const;

    /** Format a double with @p digits significant digits. */
    static std::string num(double v, int digits = 4);

    /** Format a probability as a percentage ("12.34%", "<1e-6%"). */
    static std::string pct(double p, double floor = 0.0);

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
    std::vector<size_t> sepAfter;
};

} // namespace aiecc

#endif // AIECC_COMMON_TABLE_HH
