#include "gf/gf256.hh"

#include "common/logging.hh"

namespace aiecc
{

Gf256::Tables::Tables()
{
    // Enumerate powers of alpha = 0x02 under the primitive polynomial.
    unsigned x = 1;
    for (unsigned i = 0; i < groupOrder; ++i) {
        exp[i] = static_cast<GfElem>(x);
        logTab[x] = static_cast<uint16_t>(i);
        x <<= 1;
        if (x & 0x100)
            x ^= primPoly;
    }
    // Duplicate the cycle so mul() can index exp[la + lb] directly.
    for (unsigned i = groupOrder; i < 512; ++i)
        exp[i] = exp[i - groupOrder];
    logTab[0] = 0xFFFF; // poison: log(0) is undefined
}

const Gf256::Tables &
Gf256::tables()
{
    static const Tables t;
    return t;
}

GfElem
Gf256::mul(GfElem a, GfElem b)
{
    if (a == 0 || b == 0)
        return 0;
    const auto &t = tables();
    return t.exp[t.logTab[a] + t.logTab[b]];
}

GfElem
Gf256::div(GfElem a, GfElem b)
{
    AIECC_ASSERT(b != 0, "GF(256) division by zero");
    if (a == 0)
        return 0;
    const auto &t = tables();
    return t.exp[t.logTab[a] + groupOrder - t.logTab[b]];
}

GfElem
Gf256::inv(GfElem a)
{
    AIECC_ASSERT(a != 0, "GF(256) inverse of zero");
    const auto &t = tables();
    return t.exp[groupOrder - t.logTab[a]];
}

GfElem
Gf256::alphaPow(int power)
{
    int e = power % static_cast<int>(groupOrder);
    if (e < 0)
        e += groupOrder;
    return tables().exp[static_cast<unsigned>(e)];
}

unsigned
Gf256::log(GfElem a)
{
    AIECC_ASSERT(a != 0, "GF(256) log of zero");
    return tables().logTab[a];
}

GfElem
Gf256::pow(GfElem a, unsigned power)
{
    if (power == 0)
        return 1;
    if (a == 0)
        return 0;
    const unsigned e =
        (static_cast<unsigned long long>(log(a)) * power) % groupOrder;
    return tables().exp[e];
}

} // namespace aiecc
