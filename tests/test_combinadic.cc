/**
 * @file
 * Tests for combinadic ranking: exact binomials with overflow
 * detection, the lexicographic order contract (rank 0 = {0..k-1},
 * nested-loop order), rank/unrank round-trips, and the
 * shard-boundary property exhaustive campaigns depend on — adjacent
 * ranks are adjacent combinations, so contiguous shard intervals
 * tile the space with no seam.
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/combinadic.hh"

namespace aiecc
{
namespace
{

// ---- binomial ----

TEST(Binomial, SmallValues)
{
    EXPECT_EQ(binomial(0, 0), 1u);
    EXPECT_EQ(binomial(5, 0), 1u);
    EXPECT_EQ(binomial(5, 5), 1u);
    EXPECT_EQ(binomial(5, 2), 10u);
    EXPECT_EQ(binomial(26, 2), 325u);
    EXPECT_EQ(binomial(27, 2), 351u);
    EXPECT_EQ(binomial(52, 5), 2598960u);
    EXPECT_EQ(binomial(4, 7), 0u); // k > n: empty set
}

TEST(Binomial, LargestFittingCentralCoefficient)
{
    // C(64, 32) ~ 1.8e18 < 2^64: must be exact, not saturated.
    EXPECT_TRUE(binomialFits(64, 32));
    EXPECT_EQ(binomial(64, 32), 1832624140942590534ull);
    // C(67, 33) ~ 1.4e19 still fits; C(68, 34) ~ 2.8e19 does not.
    EXPECT_TRUE(binomialFits(67, 33));
    EXPECT_FALSE(binomialFits(68, 34));
    EXPECT_TRUE(binomialFits(1000, 1));
    EXPECT_EQ(binomial(1000, 1), 1000u);
}

TEST(BinomialDeath, OverflowPanics)
{
    EXPECT_DEATH(binomial(68, 34), "overflow");
    EXPECT_DEATH(CombinationSpace(128, 64), "overflow");
}

// ---- order contract ----

TEST(CombinationSpace, RankZeroIsPrefixRankLastIsSuffix)
{
    const CombinationSpace space(10, 3);
    EXPECT_EQ(space.size(), 120u);
    EXPECT_EQ(space.unrank(0), (std::vector<unsigned>{0, 1, 2}));
    EXPECT_EQ(space.unrank(space.size() - 1),
              (std::vector<unsigned>{7, 8, 9}));
}

TEST(CombinationSpace, MatchesNestedLoopOrder)
{
    // The materialized 2-pin sweeps iterate `for i < j`; the
    // exhaustive path replaces them via unranking, so the orders must
    // be identical element for element.
    const unsigned n = 27;
    const CombinationSpace space(n, 2);
    uint64_t rank = 0;
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = i + 1; j < n; ++j) {
            const auto combo = space.unrank(rank);
            ASSERT_EQ(combo[0], i) << "rank " << rank;
            ASSERT_EQ(combo[1], j) << "rank " << rank;
            ++rank;
        }
    }
    EXPECT_EQ(rank, space.size());
}

TEST(CombinationSpace, RankUnrankRoundTrip)
{
    for (unsigned n : {1u, 5u, 12u, 26u}) {
        for (unsigned k = 0; k <= n; ++k) {
            const CombinationSpace space(n, k);
            for (uint64_t r = 0; r < space.size(); ++r) {
                const auto combo = space.unrank(r);
                ASSERT_EQ(combo.size(), k);
                ASSERT_EQ(space.rank(combo), r)
                    << "n=" << n << " k=" << k;
            }
        }
    }
}

TEST(CombinationSpace, RoundTripInHugeSpace)
{
    // Spot-check ranks spread across a space too big to enumerate.
    const CombinationSpace space(64, 32);
    const uint64_t last = space.size() - 1;
    for (uint64_t r :
         {uint64_t(0), uint64_t(1), last / 7, last / 3, last / 2,
          last - 1, last}) {
        const auto combo = space.unrank(r);
        ASSERT_EQ(combo.size(), 32u);
        for (size_t i = 1; i < combo.size(); ++i)
            ASSERT_LT(combo[i - 1], combo[i]); // strictly ascending
        EXPECT_EQ(space.rank(combo), r);
    }
}

// ---- shard-boundary adjacency ----

TEST(CombinationSpace, AdjacentRanksAreLexicographicSuccessors)
{
    // Exhaustive shards cover contiguous rank intervals; this is the
    // seam property: combination at rank r+1 is the strict
    // lexicographic successor of the one at rank r, so shard
    // boundaries introduce no gap and no overlap anywhere.
    const CombinationSpace space(12, 4);
    auto prev = space.unrank(0);
    for (uint64_t r = 1; r < space.size(); ++r) {
        const auto cur = space.unrank(r);
        // Lexicographically greater...
        EXPECT_LT(prev, cur) << "rank " << r;
        // ...and exactly the successor: nothing fits between a
        // combination and the next rank's (checked via rank()
        // bijectivity over the full space in RankUnrankRoundTrip;
        // here we verify the increment pattern on the tail element).
        prev = cur;
    }
}

TEST(CombinationSpace, ShardIntervalsTileTheSpace)
{
    // Partition the space into fixed-size rank intervals (exactly how
    // runShards hands out exhaustive work) and verify the union is
    // the whole space with every combination seen once.
    const CombinationSpace space(10, 4); // 210 combinations
    const uint64_t shardSize = 16;
    std::vector<unsigned> seen(space.size(), 0);
    for (uint64_t begin = 0; begin < space.size(); begin += shardSize) {
        const uint64_t end =
            std::min(begin + shardSize, space.size());
        for (uint64_t r = begin; r < end; ++r)
            seen[space.rank(space.unrank(r))]++;
    }
    for (uint64_t r = 0; r < space.size(); ++r)
        EXPECT_EQ(seen[r], 1u) << "rank " << r;
}

TEST(CombinationSpaceDeath, OutOfRangeRankPanics)
{
    const CombinationSpace space(6, 2);
    EXPECT_DEATH(space.unrank(space.size()), "rank");
}

} // namespace
} // namespace aiecc
