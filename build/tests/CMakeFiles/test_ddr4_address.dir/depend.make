# Empty dependencies file for test_ddr4_address.
# This may be replaced when dependencies are built.
