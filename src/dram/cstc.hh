/**
 * @file
 * The Command State and Timing Checker (CSTC), Section IV-C of the
 * AIECC paper.
 *
 * A CSTC instance sits inside the DRAM device beside each bank and
 * validates every received command against the bank-state machine and
 * the JEDEC timing constraints of Table I.  Commands that break the
 * protocol (an ACT to an open bank, a RD to an idle bank, an MRS while
 * banks are open, a reserved encoding, or any timing violation) raise
 * an alert and are not executed.
 */

#ifndef AIECC_DRAM_CSTC_HH
#define AIECC_DRAM_CSTC_HH

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "ddr4/address.hh"
#include "ddr4/command.hh"
#include "ddr4/timing.hh"

namespace aiecc
{

/**
 * Protocol-tracking state machine for one DRAM rank.
 *
 * The checker mirrors bank open/closed state from the command stream
 * it observes (the same stream the array sees) and timestamps the
 * events each Table I constraint refers to.  check() validates a
 * candidate command; commit() records an executed one.
 */
class Cstc
{
  public:
    Cstc(const Geometry &geom, const TimingParams &timing);

    /**
     * Validate a command against bank state and timing.
     *
     * @param now Current cycle.
     * @param cmd The decoded command.
     * @return A violation description, or nullopt if the command is
     *         legal.
     */
    std::optional<std::string> check(Cycle now, const Command &cmd) const;

    /**
     * Record an executed command, updating the state mirror and the
     * timing history.  Call only for commands that were executed.
     */
    void commit(Cycle now, const Command &cmd);

    /** True if the mirrored state says the bank is open. */
    bool bankOpen(unsigned flatBank) const { return open[flatBank]; }

    /** Number of banks tracked. */
    unsigned numBanks() const { return static_cast<unsigned>(open.size()); }

  private:
    Geometry geom;
    TimingParams tp;

    /** "Never happened" timestamp sentinel. */
    static constexpr Cycle longAgo = ~static_cast<Cycle>(0);

    std::vector<bool> open;
    std::vector<Cycle> lastAct;     ///< per bank
    std::vector<Cycle> lastPre;     ///< per bank
    std::vector<Cycle> lastRd;      ///< per bank
    std::vector<Cycle> lastWrEnd;   ///< per bank, end of write data
    Cycle lastActAny = longAgo;
    Cycle lastColCmd = longAgo;     ///< rank-wide tCCD reference
    Cycle lastWrEndAny = longAgo;   ///< rank-wide tWTR reference
    Cycle lastRef = longAgo;
    std::deque<Cycle> actWindow;    ///< recent ACTs for tFAW

    /** now - then >= limit, treating the zero timestamp as "never". */
    static bool
    elapsed(Cycle now, Cycle then, unsigned limit)
    {
        return then == longAgo || now >= then + limit;
    }

    std::optional<std::string>
    checkColumn(Cycle now, const Command &cmd, bool isRead) const;

    std::optional<std::string>
    checkPre(Cycle now, unsigned flatBank) const;
};

} // namespace aiecc

#endif // AIECC_DRAM_CSTC_HH
