/**
 * @file
 * Ablation: eDECC design choices.
 *
 * (a) Organization: combined-ECC eDECC on AMD chipkill vs QPC Bamboo
 *     vs the transformation and Azul alternatives, under the full
 *     CCCA campaign (which organization backs the "eDECC" box matters
 *     for diagnosis but not for raw coverage — quantified here).
 * (b) Address-symbol budget: how many virtual address symbols the
 *     shortened RS code needs — coverage of 8/16/24/32-bit address
 *     protection against random wrong-address events (the paper picks
 *     32 bits = 256GB/channel; fewer bits alias more).
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "inject/campaign.hh"
#include "rs/rs_code.hh"

using namespace aiecc;

namespace
{

/**
 * Alias probability of protecting only the low `bits` of the MTB
 * address: a random wrong address escapes iff it agrees on every
 * protected bit.
 */
double
truncatedAddressAliasRate(unsigned bits, unsigned trials, Rng &rng)
{
    unsigned alias = 0;
    for (unsigned i = 0; i < trials; ++i) {
        const uint32_t a = static_cast<uint32_t>(rng.next());
        uint32_t b = static_cast<uint32_t>(rng.next());
        if (a == b)
            b ^= 1u << 31;
        const uint32_t m =
            bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1);
        alias += ((a ^ b) & m) == 0;
    }
    return static_cast<double>(alias) / trials;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opt = bench::parse(argc, argv);
    const bool quick = opt.quick;

    bench::banner("Ablation (a): AIECC coverage vs eDECC organization");

    struct Variant
    {
        const char *name;
        EccScheme scheme;
    };
    const Variant variants[] = {
        {"AIECC w/ AMD eDECC-c", EccScheme::EDeccAmd},
        {"AIECC w/ QPC eDECC-c", EccScheme::EDeccQpc},
        {"AIECC w/ QPC eDECC-t", EccScheme::EDeccTransformQpc},
        {"AIECC w/ QPC+Azul", EccScheme::AzulQpc},
    };

    TextTable t;
    std::vector<std::string> head{"variant"};
    for (CommandPattern pattern : allPatterns())
        head.push_back(patternName(pattern));
    head.push_back("diagnosis");
    t.header(head);

    struct VariantRow
    {
        std::string name;
        std::vector<double> covered;
        bool preciseDiagnosis = false;
    };
    std::vector<VariantRow> variantRows;

    for (const auto &variant : variants) {
        Mechanisms mech = Mechanisms::forLevel(ProtectionLevel::Aiecc);
        mech.ecc = variant.scheme;
        InjectionCampaign campaign(mech);
        std::vector<std::string> row{variant.name};
        VariantRow vr;
        vr.name = variant.name;
        for (CommandPattern pattern : allPatterns()) {
            auto stats = campaign.sweepOnePin(pattern);
            if (!quick) {
                const auto twoPin = campaign.sweepTwoPin(pattern);
                stats.trials += twoPin.trials;
                stats.sdc += twoPin.sdc;
                stats.mdc += twoPin.mdc;
                stats.noEffect += twoPin.noEffect;
                stats.sdcMdcBoth += twoPin.sdcMdcBoth;
                stats.detected += twoPin.detected;
            }
            row.push_back(TextTable::pct(stats.coveredFrac()));
            vr.covered.push_back(stats.coveredFrac());
            // Probe one diagnostic case per pattern.
            const auto r = campaign.runTrial(
                pattern, PinError::twoPin(Pin::A3, Pin::A4));
            vr.preciseDiagnosis |= r.diagnosedAddress.has_value();
        }
        row.push_back(vr.preciseDiagnosis ? "precise" : "none");
        t.row(row);
        variantRows.push_back(std::move(vr));
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("Coverage is carried by the mechanism *combination*; "
                "the eDECC\norganization decides diagnosis quality "
                "(combined-ECC variants recover\nthe faulty address, "
                "transformation/Azul only raise a flag).\n");

    bench::banner("Ablation (b): address-symbol budget");
    std::printf("The 32-bit MTB address costs 4 virtual RS symbols on "
                "QPC (1 on each\nAMD codeword).  Protecting fewer bits "
                "saves nothing (the symbols are\nfree) but narrows "
                "reach; truncating the *protected field* aliases:\n\n");
    TextTable b;
    b.header({"protected addr bits", "reach per channel",
              "random-wrong-address escape rate"});
    Rng rng(0xAB1A);
    const unsigned trials = quick ? 20000 : 200000;
    struct BudgetRow
    {
        unsigned bits;
        double reachBytes;
        double escapeRate;
    };
    std::vector<BudgetRow> budgetRows;
    for (unsigned bits : {8u, 16u, 24u, 32u}) {
        const double reach = 64.0 * std::pow(2.0, bits); // 64B blocks
        std::string reachStr;
        if (reach >= (1ULL << 30))
            reachStr = TextTable::num(reach / (1ULL << 30), 3) + " GB";
        else
            reachStr = TextTable::num(reach / (1ULL << 20), 3) + " MB";
        const double escape =
            truncatedAddressAliasRate(bits, trials, rng);
        budgetRows.push_back({bits, reach, escape});
        b.row({std::to_string(bits), reachStr,
               TextTable::pct(escape, 1.0 / trials)});
    }
    std::printf("%s\n", b.str().c_str());

    bench::writeJsonArtifact(
        opt, "ablation_edecc", [&](obs::JsonWriter &w) {
            w.beginObject();
            w.key("organizations");
            w.beginObject();
            for (const auto &vr : variantRows) {
                w.key(vr.name);
                w.beginObject();
                const auto patterns = allPatterns();
                for (size_t i = 0; i < patterns.size(); ++i)
                    w.kv(patternName(patterns[i]), vr.covered[i]);
                w.kv("diagnosis",
                     vr.preciseDiagnosis ? "precise" : "none");
                w.endObject();
            }
            w.endObject();
            w.key("address_symbol_budget");
            w.beginArray();
            for (const auto &br : budgetRows) {
                w.beginObject();
                w.kv("protected_bits", br.bits);
                w.kv("reach_bytes", br.reachBytes);
                w.kv("escape_rate", br.escapeRate);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        });
    std::printf("32 protected bits reach 256GB/channel with a random "
                "wrong-address\nescape below measurement (the paper's "
                "choice); 8 bits would alias\n~0.4%% of wrong "
                "addresses.\n");
    return 0;
}
