#include "obs/coverage.hh"

#include <sstream>
#include <tuple>

#include "common/logging.hh"

namespace aiecc
{
namespace obs
{

CoverageMatrix
CoverageMatrix::fromLedger(const LineageLedger &ledger)
{
    // Keyed map gives the deterministic (kind, mech, terminal) cell
    // order the --jobs byte-equality gates rely on.
    std::map<std::tuple<unsigned, std::string, unsigned>, uint64_t> counts;
    for (const LineageRecord &rec : ledger.records()) {
        const auto key =
            std::make_tuple(static_cast<unsigned>(rec.kind),
                            ledger.mechanismLabel(rec.mech),
                            static_cast<unsigned>(rec.terminal));
        ++counts[key];
    }

    CoverageMatrix matrix;
    matrix.total = ledger.size();
    for (const auto &[key, count] : counts) {
        Cell cell;
        cell.kind = static_cast<FaultKind>(std::get<0>(key));
        cell.mech = std::get<1>(key);
        cell.terminal = static_cast<FaultTerminal>(std::get<2>(key));
        cell.count = count;
        matrix.table.push_back(cell);
    }
    return matrix;
}

uint64_t
CoverageMatrix::terminalTotal(FaultTerminal terminal) const
{
    uint64_t sum = 0;
    for (const Cell &cell : table)
        if (cell.terminal == terminal)
            sum += cell.count;
    return sum;
}

CoverageMatrix::Audit
CoverageMatrix::audit() const
{
    Audit a;
    a.injected = total;
    uint64_t accounted = 0;
    for (const Cell &cell : table)
        a.byTerminal[static_cast<unsigned>(cell.terminal)] += cell.count;
    a.unaccounted =
        a.byTerminal[static_cast<unsigned>(FaultTerminal::Unaccounted)];
    for (unsigned t = 0; t < numFaultTerminals; ++t)
        if (t != static_cast<unsigned>(FaultTerminal::Unaccounted))
            accounted += a.byTerminal[t];

    if (a.unaccounted > 0) {
        std::ostringstream msg;
        msg << a.unaccounted << " fault(s) injected but never resolved "
            << "to a terminal state";
        a.violations.push_back(msg.str());
    }
    if (accounted + a.unaccounted != a.injected) {
        std::ostringstream msg;
        msg << "conservation broken: injected " << a.injected
            << " != accounted " << accounted << " + unaccounted "
            << a.unaccounted;
        a.violations.push_back(msg.str());
    }
    a.ok = a.violations.empty();
    return a;
}

void
CoverageMatrix::writeJson(JsonWriter &w) const
{
    const Audit a = audit();
    w.beginObject();
    w.kv("injected", a.injected);
    w.kv("unaccounted", a.unaccounted);
    w.kv("conserved", a.ok);
    w.key("by_terminal").beginObject();
    for (unsigned t = 0; t < numFaultTerminals; ++t) {
        if (t == static_cast<unsigned>(FaultTerminal::Unaccounted) &&
            a.byTerminal[t] == 0) {
            continue; // healthy campaigns don't list the zero
        }
        w.kv(faultTerminalName(static_cast<FaultTerminal>(t)),
             a.byTerminal[t]);
    }
    w.endObject();
    w.key("cells").beginArray();
    for (const Cell &cell : table) {
        w.beginObject();
        w.kv("kind", faultKindName(cell.kind));
        if (!cell.mech.empty())
            w.kv("mech", cell.mech);
        w.kv("terminal", faultTerminalName(cell.terminal));
        w.kv("count", cell.count);
        w.endObject();
    }
    w.endArray();
    if (!a.violations.empty()) {
        w.key("violations").beginArray();
        for (const std::string &v : a.violations)
            w.value(v);
        w.endArray();
    }
    w.endObject();
}

} // namespace obs
} // namespace aiecc
