#include "obs/profile.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace aiecc
{
namespace obs
{

namespace
{

/** Exact double round-trip, matching stats.cc's serialized form. */
double
doubleFromBitsHex(const std::string &hex)
{
    const uint64_t bits = std::strtoull(hex.c_str(), nullptr, 16);
    double v;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

} // namespace

Histogram &
ProfileRegistry::timer(const std::string &name,
                       const std::string &description)
{
    const auto it = timers.find(name);
    if (it != timers.end())
        return *it->second;
    auto stat = std::make_unique<Histogram>(name, description);
    auto scope = std::make_unique<memprof::AllocStats>();
    stat->setAllocScope(scope.get());
    Histogram &ref = *stat;
    timers.emplace(name, std::move(stat));
    allocs.emplace(name, std::move(scope));
    return ref;
}

const Histogram *
ProfileRegistry::find(const std::string &name) const
{
    const auto it = timers.find(name);
    return it == timers.end() ? nullptr : it->second.get();
}

const memprof::AllocStats *
ProfileRegistry::findAlloc(const std::string &name) const
{
    const auto it = allocs.find(name);
    return it == allocs.end() ? nullptr : it->second.get();
}

void
ProfileRegistry::reset()
{
    for (auto &[name, timer] : timers)
        timer->reset();
    for (auto &[name, scope] : allocs)
        scope->reset();
}

void
ProfileRegistry::merge(const ProfileRegistry &other)
{
    for (const auto &[name, t] : other.timers) {
        timer(name, t->description()).merge(*t);
        const auto scope = other.allocs.find(name);
        if (scope != other.allocs.end())
            allocs.at(name)->merge(*scope->second);
    }
}

void
ProfileRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, t] : timers) {
        w.key(name)
            .beginObject()
            .kv("count", t->count())
            .kv("total_ns", t->sum())
            .kv("mean_ns", t->mean())
            .kv("min_ns", t->min())
            .kv("max_ns", t->max())
            .kv("p50_ns", t->quantile(0.50))
            .kv("p90_ns", t->quantile(0.90))
            .kv("p99_ns", t->quantile(0.99))
            .endObject();
    }
    w.endObject();
}

void
ProfileRegistry::writeAllocJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, scope] : allocs) {
        const Histogram *t = find(name);
        const uint64_t calls = t ? t->count() : 0;
        w.key(name)
            .beginObject()
            .kv("calls", calls)
            .kv("allocs", scope->allocs)
            .kv("frees", scope->frees)
            .kv("alloc_bytes", scope->allocBytes)
            .kv("free_bytes", scope->freeBytes)
            .kv("peak_live_bytes", scope->peakLiveBytes)
            .kv("allocs_per_call",
                calls ? static_cast<double>(scope->allocs) /
                            static_cast<double>(calls)
                      : 0.0)
            .endObject();
    }
    w.endObject();
}

uint64_t
ProfileRegistry::totalScopedAllocs() const
{
    uint64_t total = 0;
    for (const auto &[name, scope] : allocs)
        total += scope->allocs;
    return total;
}

std::string
ProfileRegistry::serializeState() const
{
    // Timer names follow the stats registry's dotted convention (no
    // whitespace), so one space-separated line per timer is
    // unambiguous: name, histogram state, then the six allocation
    // counters.
    std::ostringstream out;
    out << "profile " << timers.size() << '\n';
    for (const auto &[name, t] : timers) {
        const memprof::AllocStats &a = *allocs.at(name);
        out << name << ' ' << t->serializeState() << ' ' << a.allocs
            << ' ' << a.frees << ' ' << a.allocBytes << ' '
            << a.freeBytes << ' ' << a.liveBytes << ' '
            << a.peakLiveBytes << '\n';
    }
    return out.str();
}

void
ProfileRegistry::deserializeState(const std::string &text)
{
    std::istringstream in(text);
    std::string tag, name, hex;
    uint64_t count = 0;
    in >> tag >> count;
    AIECC_ASSERT(in && tag == "profile",
                 "profile state: expected 'profile' header");
    ProfileRegistry fresh;
    for (uint64_t i = 0; i < count; ++i) {
        in >> name;
        AIECC_ASSERT(in, "profile state: truncated timer table");
        Histogram &h = fresh.timer(name);
        in >> h.cnt >> hex >> h.mn >> h.mx;
        h.total = doubleFromBitsHex(hex);
        for (unsigned b = 0; b < Histogram::numBuckets; ++b)
            in >> h.buckets[b];
        memprof::AllocStats &a = *fresh.allocs.at(name);
        in >> a.allocs >> a.frees >> a.allocBytes >> a.freeBytes >>
            a.liveBytes >> a.peakLiveBytes;
        AIECC_ASSERT(in, "profile state: truncated timer '" << name
                                                            << "'");
    }
    *this = std::move(fresh);
}

std::string
ProfileRegistry::str() const
{
    std::ostringstream out;
    for (const auto &[name, t] : timers) {
        out << name << " count=" << t->count()
            << " total_ns=" << t->sum() << " mean_ns=" << t->mean()
            << " p50_ns=" << t->quantile(0.50)
            << " p90_ns=" << t->quantile(0.90)
            << " p99_ns=" << t->quantile(0.99) << "\n";
    }
    return out.str();
}

} // namespace obs
} // namespace aiecc
