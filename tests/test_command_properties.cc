/**
 * @file
 * Parameterized property sweeps over the DDR4 command codec: for
 * every command type x every pin, the decode of a flipped word is
 * deterministic and the codec obeys structural invariants (CS gating,
 * parity algebra, field isolation).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ddr4/command.hh"

namespace aiecc
{
namespace
{

std::vector<Command>
representativeCommands()
{
    Command mrs;
    mrs.type = CmdType::Mrs;
    Command zqc;
    zqc.type = CmdType::Zqc;
    return {
        Command::act(0, 0, 0),       Command::act(3, 3, 0x3FFFF),
        Command::act(1, 2, 0x15A5A), Command::rd(0, 0, 0),
        Command::rd(2, 1, 0x3FF),    Command::wr(1, 3, 0x2A8),
        Command::wr(0, 0, 0, true),  Command::pre(2, 2),
        Command::preAll(),           Command::ref(),
        Command::nop(),              mrs,
        zqc,
    };
}

/** Property suite parameterized over the injectable pins. */
class PinFlipProperties : public ::testing::TestWithParam<unsigned>
{
  protected:
    Pin pin() const { return static_cast<Pin>(GetParam()); }
};

TEST_P(PinFlipProperties, FlipIsInvolutory)
{
    for (const auto &cmd : representativeCommands()) {
        auto pins = encodeCommand(cmd);
        const auto original = pins;
        pins.flip(pin());
        EXPECT_NE(pins, original);
        pins.flip(pin());
        EXPECT_EQ(pins, original);
    }
}

TEST_P(PinFlipProperties, DecodeIsDeterministic)
{
    for (const auto &cmd : representativeCommands()) {
        auto pins = encodeCommand(cmd);
        pins.flip(pin());
        const auto a = decodeCommand(pins);
        const auto b = decodeCommand(pins);
        EXPECT_EQ(a.cmd, b.cmd);
        EXPECT_EQ(a.executed, b.executed);
    }
}

TEST_P(PinFlipProperties, CsHighAlwaysWins)
{
    // Whatever else the error does, a deselected edge is never
    // executed.
    for (const auto &cmd : representativeCommands()) {
        auto pins = encodeCommand(cmd);
        pins.flip(pin());
        pins.set(Pin::CS, true);
        EXPECT_FALSE(decodeCommand(pins).executed);
    }
}

TEST_P(PinFlipProperties, SingleFlipAltersParity)
{
    // Any single CMD/ADD flip toggles CA parity — the algebraic fact
    // behind CAP's 1-pin coverage.
    if (pinGroup(pin()) != PinGroup::CmdAdd)
        GTEST_SKIP();
    for (const auto &cmd : representativeCommands()) {
        auto pins = encodeCommand(cmd);
        const bool before = pins.cmdAddParity();
        pins.flip(pin());
        EXPECT_NE(pins.cmdAddParity(), before);
    }
}

TEST_P(PinFlipProperties, NonAddressPinsPreserveBankFields)
{
    // Flipping a CTRL pin never changes the decoded bank of an
    // executed command.
    if (pinGroup(pin()) != PinGroup::Ctrl)
        GTEST_SKIP();
    for (const auto &cmd : representativeCommands()) {
        auto pins = encodeCommand(cmd);
        pins.flip(pin());
        const auto dec = decodeCommand(pins);
        if (dec.executed && dec.cmd.type == cmd.type) {
            EXPECT_EQ(dec.cmd.bg, cmd.bg);
            EXPECT_EQ(dec.cmd.ba, cmd.ba);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllInjectablePins, PinFlipProperties,
    ::testing::Range(0u, 27u), // pins 0..26 (CK excluded by number)
    [](const auto &info) {
        std::string name = pinName(static_cast<Pin>(info.param));
        for (auto &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(CommandProperties, EveryTypeRoundTrips)
{
    for (const auto &cmd : representativeCommands()) {
        const auto dec = decodeCommand(encodeCommand(cmd));
        if (cmd.type == CmdType::Des) {
            EXPECT_FALSE(dec.executed);
            continue;
        }
        EXPECT_EQ(dec.cmd.type, cmd.type) << cmd.toString();
        if (cmd.type == CmdType::Act)
            EXPECT_EQ(dec.cmd.row, cmd.row);
        if (cmd.type == CmdType::Rd || cmd.type == CmdType::Wr) {
            EXPECT_EQ(dec.cmd.col, cmd.col);
            EXPECT_EQ(dec.cmd.autoPrecharge, cmd.autoPrecharge);
        }
    }
}

TEST(CommandProperties, RandomPinWordsAlwaysDecode)
{
    // decode() is total: any 28-bit word yields a well-formed command.
    Rng rng(0xC0DEC);
    for (int i = 0; i < 5000; ++i) {
        PinWord pins;
        pins.levels = static_cast<uint32_t>(rng.below(1u << 28));
        const auto dec = decodeCommand(pins);
        if (dec.executed) {
            EXPECT_LT(dec.cmd.bg, 4u);
            EXPECT_LT(dec.cmd.ba, 4u);
            EXPECT_LT(dec.cmd.row, 1u << 18);
            EXPECT_LT(dec.cmd.col, 1u << 10);
        }
    }
}

TEST(CommandProperties, ParityNeverAffectsDecode)
{
    Rng rng(0xC0DED);
    for (const auto &cmd : representativeCommands()) {
        auto pins = encodeCommand(cmd);
        auto flipped = pins;
        flipped.flip(Pin::PAR);
        EXPECT_EQ(decodeCommand(pins).cmd, decodeCommand(flipped).cmd);
    }
    (void)rng;
}

} // namespace
} // namespace aiecc
