/**
 * @file
 * Unit and property tests for GF(2^8) arithmetic.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "gf/gf256.hh"

namespace aiecc
{
namespace
{

TEST(Gf256, AddIsXor)
{
    EXPECT_EQ(Gf256::add(0x53, 0xCA), 0x53 ^ 0xCA);
    EXPECT_EQ(Gf256::add(0, 0x7F), 0x7F);
    EXPECT_EQ(Gf256::sub(0x53, 0xCA), Gf256::add(0x53, 0xCA));
}

TEST(Gf256, MulIdentityAndZero)
{
    for (unsigned a = 0; a < 256; ++a) {
        EXPECT_EQ(Gf256::mul(static_cast<GfElem>(a), 1), a);
        EXPECT_EQ(Gf256::mul(1, static_cast<GfElem>(a)), a);
        EXPECT_EQ(Gf256::mul(static_cast<GfElem>(a), 0), 0);
    }
}

TEST(Gf256, KnownProducts)
{
    // Hand-checked products under poly 0x11D.
    EXPECT_EQ(Gf256::mul(2, 2), 4);
    EXPECT_EQ(Gf256::mul(0x80, 2), 0x1D);   // x^8 reduces to 0x1D
    EXPECT_EQ(Gf256::mul(0xFF, 0xFF), 0xE2);
}

TEST(Gf256, MulCommutativeAssociative)
{
    Rng rng(21);
    for (int i = 0; i < 2000; ++i) {
        const GfElem a = static_cast<GfElem>(rng.below(256));
        const GfElem b = static_cast<GfElem>(rng.below(256));
        const GfElem c = static_cast<GfElem>(rng.below(256));
        EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
        EXPECT_EQ(Gf256::mul(Gf256::mul(a, b), c),
                  Gf256::mul(a, Gf256::mul(b, c)));
    }
}

TEST(Gf256, Distributive)
{
    Rng rng(22);
    for (int i = 0; i < 2000; ++i) {
        const GfElem a = static_cast<GfElem>(rng.below(256));
        const GfElem b = static_cast<GfElem>(rng.below(256));
        const GfElem c = static_cast<GfElem>(rng.below(256));
        EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
                  Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
    }
}

TEST(Gf256, InverseRoundTrip)
{
    for (unsigned a = 1; a < 256; ++a) {
        const GfElem ia = Gf256::inv(static_cast<GfElem>(a));
        EXPECT_EQ(Gf256::mul(static_cast<GfElem>(a), ia), 1)
            << "a=" << a;
    }
}

TEST(Gf256, DivisionInvertsMultiplication)
{
    Rng rng(23);
    for (int i = 0; i < 2000; ++i) {
        const GfElem a = static_cast<GfElem>(rng.below(256));
        const GfElem b = static_cast<GfElem>(rng.range(1, 255));
        EXPECT_EQ(Gf256::div(Gf256::mul(a, b), b), a);
    }
}

TEST(Gf256, AlphaGeneratesFullGroup)
{
    // alpha must be primitive: its powers hit all 255 nonzero elements.
    bool seen[256] = {false};
    for (int i = 0; i < 255; ++i) {
        const GfElem v = Gf256::alphaPow(i);
        EXPECT_NE(v, 0);
        EXPECT_FALSE(seen[v]) << "repeat at power " << i;
        seen[v] = true;
    }
    EXPECT_EQ(Gf256::alphaPow(255), 1);
    EXPECT_EQ(Gf256::alphaPow(0), 1);
    EXPECT_EQ(Gf256::alphaPow(-1), Gf256::inv(2));
}

TEST(Gf256, LogExpInverse)
{
    for (unsigned a = 1; a < 256; ++a) {
        EXPECT_EQ(Gf256::alphaPow(static_cast<int>(
                      Gf256::log(static_cast<GfElem>(a)))),
                  a);
    }
}

TEST(Gf256, PowMatchesRepeatedMul)
{
    Rng rng(24);
    for (int i = 0; i < 500; ++i) {
        const GfElem a = static_cast<GfElem>(rng.below(256));
        const unsigned e = static_cast<unsigned>(rng.below(520));
        GfElem expect = 1;
        for (unsigned j = 0; j < e; ++j)
            expect = Gf256::mul(expect, a);
        EXPECT_EQ(Gf256::pow(a, e), expect)
            << "a=" << unsigned(a) << " e=" << e;
    }
    EXPECT_EQ(Gf256::pow(0, 0), 1);
    EXPECT_EQ(Gf256::pow(0, 5), 0);
}

} // namespace
} // namespace aiecc
