# Empty compiler generated dependencies file for aiecc_crc.
# This may be replaced when dependencies are built.
