/**
 * @file
 * Synthetic DRAM workload generation and characterization.
 *
 * The paper characterizes 56 benchmarks with Xeon uncore performance
 * counters and clusters them into four representative centroids
 * (Figure 9a).  Licensed suites and counter hardware are unavailable
 * here, so this module generates synthetic access streams spanning the
 * same feature space — bandwidth utilization, read/write mix, and row
 * locality — runs them through an open-page controller model, and
 * extracts the same per-command bandwidth features the FIT model
 * (Equation 1) consumes.
 */

#ifndef AIECC_WORKLOAD_WORKLOAD_HH
#define AIECC_WORKLOAD_WORKLOAD_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "ddr4/address.hh"

namespace aiecc
{

/** Per-command issue rates, in commands per second (Figure 9a). */
struct CommandRates
{
    double actWr = 0; ///< ACTs whose first column command is a WR
    double actRd = 0; ///< ACTs whose first column command is a RD
    double wr = 0;
    double rd = 0;
    double pre = 0;

    double total() const { return actWr + actRd + wr + rd + pre; }
};

/** Knobs of a synthetic benchmark. */
struct WorkloadParams
{
    std::string name;
    double bandwidthUtil = 0.1; ///< fraction of peak data bandwidth
    double readFrac = 0.67;     ///< fraction of accesses that read
    double rowHitRate = 0.6;    ///< probability of reusing the open row
    uint64_t accesses = 200000; ///< simulated accesses
    uint64_t seed = 1;
};

/** Features extracted from a characterization (clustering space). */
struct WorkloadFeatures
{
    std::string name;
    double dataBwUtil = 0;   ///< data-bus utilization fraction
    double readWriteRatio = 0;
    double casPerAct = 0;    ///< column commands per activation
    double actRdPerActWr = 0;

    /** Feature vector for clustering (normalized by the caller). */
    std::vector<double> vec() const
    {
        return {dataBwUtil, readWriteRatio, casPerAct, actRdPerActWr};
    }
};

/** Result of characterizing one workload. */
struct Characterization
{
    WorkloadFeatures features;
    CommandRates rates;
};

/**
 * Generate a synthetic access stream and characterize its DRAM
 * command mix through an open-page controller model.
 *
 * @param params Workload knobs.
 * @param geom Channel geometry.
 * @param peakAccessesPerSec Channel peak 64B-block rate (DDR4-2400
 *        x64: 19.2 GB/s / 64B = 3e8 blocks/s).
 */
Characterization characterize(const WorkloadParams &params,
                              const Geometry &geom = Geometry{},
                              double peakAccessesPerSec = 3.0e8);

/**
 * A synthetic benchmark suite spanning the paper's feature space:
 * low/medium/high-bandwidth groups plus a read-dominated outlier
 * (wat-nsquared's analog).
 */
std::vector<WorkloadParams> syntheticSuite();

} // namespace aiecc

#endif // AIECC_WORKLOAD_WORKLOAD_HH
