/**
 * @file
 * Unit tests for the DDR4 pin map and command codec: encode/decode
 * round trips, the JEDEC truth table, don't-care pin behaviour (the
 * basis of Table II's "no error" cells), and parity driving/checking.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ddr4/command.hh"
#include "ddr4/pins.hh"

namespace aiecc
{
namespace
{

TEST(Pins, GroupsMatchFigure2)
{
    EXPECT_EQ(pinGroup(Pin::A0), PinGroup::CmdAdd);
    EXPECT_EQ(pinGroup(Pin::ACT), PinGroup::CmdAdd);
    EXPECT_EQ(pinGroup(Pin::RAS_A16), PinGroup::CmdAdd);
    EXPECT_EQ(pinGroup(Pin::PAR), PinGroup::Par);
    EXPECT_EQ(pinGroup(Pin::CKE), PinGroup::Ctrl);
    EXPECT_EQ(pinGroup(Pin::CS), PinGroup::Ctrl);
    EXPECT_EQ(pinGroup(Pin::ODT), PinGroup::Ctrl);
    EXPECT_EQ(pinGroup(Pin::CK), PinGroup::Clock);
}

TEST(Pins, InjectablePinCounts)
{
    // 27 CTRL/CMD/ADD signals when PAR participates (§V-A), 26 when
    // the pin is absent; CK is never a 1-pin target.
    EXPECT_EQ(injectablePins(true).size(), 27u);
    EXPECT_EQ(injectablePins(false).size(), 26u);
}

TEST(Pins, CmdAddParityCoversOnlyPins22to0)
{
    PinWord w;
    EXPECT_FALSE(w.cmdAddParity());
    w.set(Pin::A0, true);
    EXPECT_TRUE(w.cmdAddParity());
    w.set(Pin::ACT, true);
    EXPECT_FALSE(w.cmdAddParity());
    // CTRL and PAR pins do not affect CA parity.
    w.set(Pin::CKE, true);
    w.set(Pin::CS, true);
    w.set(Pin::PAR, true);
    EXPECT_FALSE(w.cmdAddParity());
}

TEST(Command, EncodeDecodeActRoundTrip)
{
    Rng rng(71);
    for (int i = 0; i < 200; ++i) {
        const auto cmd = Command::act(
            static_cast<unsigned>(rng.below(4)),
            static_cast<unsigned>(rng.below(4)),
            static_cast<unsigned>(rng.below(1u << 18)));
        const auto dec = decodeCommand(encodeCommand(cmd));
        EXPECT_TRUE(dec.executed);
        EXPECT_EQ(dec.cmd.type, CmdType::Act);
        EXPECT_EQ(dec.cmd.row, cmd.row);
        EXPECT_EQ(dec.cmd.bg, cmd.bg);
        EXPECT_EQ(dec.cmd.ba, cmd.ba);
    }
}

TEST(Command, EncodeDecodeColumnRoundTrip)
{
    Rng rng(72);
    for (int i = 0; i < 200; ++i) {
        const bool isRead = rng.chance(0.5);
        auto cmd = isRead
            ? Command::rd(static_cast<unsigned>(rng.below(4)),
                          static_cast<unsigned>(rng.below(4)),
                          static_cast<unsigned>(rng.below(1024)))
            : Command::wr(static_cast<unsigned>(rng.below(4)),
                          static_cast<unsigned>(rng.below(4)),
                          static_cast<unsigned>(rng.below(1024)));
        cmd.autoPrecharge = rng.chance(0.3);
        cmd.burstChop = rng.chance(0.3);
        const auto dec = decodeCommand(encodeCommand(cmd));
        EXPECT_EQ(dec.cmd.type, isRead ? CmdType::Rd : CmdType::Wr);
        EXPECT_EQ(dec.cmd.col, cmd.col);
        EXPECT_EQ(dec.cmd.bg, cmd.bg);
        EXPECT_EQ(dec.cmd.ba, cmd.ba);
        EXPECT_EQ(dec.cmd.autoPrecharge, cmd.autoPrecharge);
        EXPECT_EQ(dec.cmd.burstChop, cmd.burstChop);
    }
}

TEST(Command, TruthTableAllTypes)
{
    for (CmdType t : {CmdType::Nop, CmdType::Ref, CmdType::PreAll,
                      CmdType::Mrs, CmdType::Zqc, CmdType::Rfu}) {
        Command c;
        c.type = t;
        EXPECT_EQ(decodeCommand(encodeCommand(c)).cmd.type, t)
            << cmdName(t);
    }
    const auto pre = Command::pre(2, 3);
    const auto dec = decodeCommand(encodeCommand(pre));
    EXPECT_EQ(dec.cmd.type, CmdType::Pre);
    EXPECT_EQ(dec.cmd.bg, 2u);
    EXPECT_EQ(dec.cmd.ba, 3u);
}

TEST(Command, DeselectIsNotExecuted)
{
    Command des;
    des.type = CmdType::Des;
    const auto dec = decodeCommand(encodeCommand(des));
    EXPECT_FALSE(dec.executed);
    EXPECT_EQ(dec.cmd.type, CmdType::Des);
}

TEST(Command, CsErrorDropsCommand)
{
    // A CS_n low->high flip deselects the device: a missing command.
    auto pins = encodeCommand(Command::wr(0, 0, 8));
    pins.flip(Pin::CS);
    const auto dec = decodeCommand(pins);
    EXPECT_FALSE(dec.executed);
}

TEST(Command, CkeErrorDropsCommand)
{
    auto pins = encodeCommand(Command::rd(0, 0, 8));
    pins.flip(Pin::CKE);
    const auto dec = decodeCommand(pins);
    EXPECT_FALSE(dec.executed);
    EXPECT_FALSE(dec.ckeHigh);
}

TEST(Command, WrUnusedPinsMatchTableII)
{
    // Table II: A11, A13 and A17 do not participate in WR (or RD).
    const auto wr = Command::wr(1, 2, 0x155);
    const auto base = decodeCommand(encodeCommand(wr));
    for (Pin p : {Pin::A11, Pin::A13, Pin::A17}) {
        auto pins = encodeCommand(wr);
        pins.flip(p);
        const auto dec = decodeCommand(pins);
        EXPECT_EQ(dec.cmd, base.cmd) << pinName(p);
    }
}

TEST(Command, PreUnusedPinsMatchTableII)
{
    // Table II: fourteen pins (A17, A13..A11, A9..A0) are don't-care
    // for PRE.
    const auto pre = Command::pre(1, 2);
    const auto base = decodeCommand(encodeCommand(pre));
    const Pin unused[] = {Pin::A17, Pin::A13, Pin::A12_BC, Pin::A11,
                          Pin::A9, Pin::A8, Pin::A7, Pin::A6, Pin::A5,
                          Pin::A4, Pin::A3, Pin::A2, Pin::A1, Pin::A0};
    EXPECT_EQ(std::size(unused), 14u);
    for (Pin p : unused) {
        auto pins = encodeCommand(pre);
        pins.flip(p);
        EXPECT_EQ(decodeCommand(pins).cmd, base.cmd) << pinName(p);
    }
    // A10 is NOT a don't-care: it turns PRE into PREA.
    auto pins = encodeCommand(pre);
    pins.flip(Pin::A10_AP);
    EXPECT_EQ(decodeCommand(pins).cmd.type, CmdType::PreAll);
}

TEST(Command, ActPinErrorChangesRow)
{
    const auto act = Command::act(0, 0, 0x0F0F0);
    for (unsigned bitPos = 0; bitPos < 18; ++bitPos) {
        auto pins = encodeCommand(act);
        // Flipping any row-address pin flips exactly that row bit.
        const Pin rowPins[18] = {
            Pin::A0, Pin::A1, Pin::A2, Pin::A3, Pin::A4, Pin::A5,
            Pin::A6, Pin::A7, Pin::A8, Pin::A9, Pin::A10_AP, Pin::A11,
            Pin::A12_BC, Pin::A13, Pin::WE_A14, Pin::CAS_A15,
            Pin::RAS_A16, Pin::A17};
        pins.flip(rowPins[bitPos]);
        const auto dec = decodeCommand(pins);
        EXPECT_EQ(dec.cmd.type, CmdType::Act);
        EXPECT_EQ(dec.cmd.row, act.row ^ (1u << bitPos));
    }
}

TEST(Command, RdToWrAliasByWePin)
{
    // WE_n separates RD (high) from WR (low): a 1-pin error aliases
    // the two dangerous column commands.
    auto pins = encodeCommand(Command::rd(0, 1, 64));
    pins.flip(Pin::WE_A14);
    EXPECT_EQ(decodeCommand(pins).cmd.type, CmdType::Wr);
}

TEST(Command, ActAliasByActPin)
{
    // Flipping ACT_n during an ACT re-interprets the row bits on
    // RAS/CAS/WE as a function code (the Table II "altered command"
    // transitions).
    const auto act = Command::act(0, 0, 0); // A16..A14 low => MRS code
    auto pins = encodeCommand(act);
    pins.flip(Pin::ACT);
    EXPECT_EQ(decodeCommand(pins).cmd.type, CmdType::Mrs);

    const auto act2 = Command::act(0, 0, 0x1C000); // A16..A14 high
    auto pins2 = encodeCommand(act2);
    pins2.flip(Pin::ACT);
    EXPECT_EQ(decodeCommand(pins2).cmd.type, CmdType::Nop);
}

TEST(Command, ParityRoundTrip)
{
    Rng rng(73);
    for (int i = 0; i < 100; ++i) {
        const auto cmd = Command::act(
            static_cast<unsigned>(rng.below(4)),
            static_cast<unsigned>(rng.below(4)),
            static_cast<unsigned>(rng.below(1u << 18)));
        auto pins = encodeCommand(cmd);
        const bool wrtBit = rng.chance(0.5);
        driveParity(pins, wrtBit);
        EXPECT_TRUE(checkParity(pins, wrtBit));
        // A WRT disagreement is detected (eCAP missing-WR detection).
        EXPECT_FALSE(checkParity(pins, !wrtBit));
    }
}

TEST(Command, ParityDetectsOddPinErrors)
{
    auto pins = encodeCommand(Command::wr(2, 1, 0x88));
    driveParity(pins, false);
    for (Pin p : injectablePins(false)) {
        if (pinGroup(p) != PinGroup::CmdAdd)
            continue;
        auto bad = pins;
        bad.flip(p);
        EXPECT_FALSE(checkParity(bad, false)) << pinName(p);
    }
}

TEST(Command, ParityMissesEvenCmdAddErrors)
{
    // The CAP weakness the paper exploits with 2-pin errors (§V-A2).
    auto pins = encodeCommand(Command::wr(2, 1, 0x88));
    driveParity(pins, false);
    auto bad = pins;
    bad.flip(Pin::A0);
    bad.flip(Pin::A1);
    EXPECT_TRUE(checkParity(bad, false));
}

TEST(Command, ParityMissesCtrlErrors)
{
    // CKE/CS/ODT are outside CA parity coverage (§III-A).
    auto pins = encodeCommand(Command::rd(0, 0, 0));
    driveParity(pins, false);
    for (Pin p : {Pin::CKE, Pin::CS, Pin::ODT}) {
        auto bad = pins;
        bad.flip(p);
        EXPECT_TRUE(checkParity(bad, false)) << pinName(p);
    }
}

TEST(Command, NamesArePrintable)
{
    for (unsigned i = 0; i < numCccaPins; ++i)
        EXPECT_NE(pinName(static_cast<Pin>(i)), "?");
    EXPECT_EQ(cmdName(CmdType::Act), "ACT");
    EXPECT_NE(Command::act(1, 2, 3).toString().find("ACT"),
              std::string::npos);
}

} // namespace
} // namespace aiecc
