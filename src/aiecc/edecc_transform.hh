/**
 * @file
 * eDECC-t: the codeword-transformation variant of extended data ECC,
 * adapted from Nicholas/IBM (US 8,949,694) to QPC Bamboo ECC exactly
 * as the paper's Section V-B does for its Table III comparison.
 *
 * The 64B payload is split into 32 sub-blocks of 16 bits, aligned
 * *orthogonally* to the Bamboo pin symbols (each sub-block spans 16
 * pins in one beat).  Sub-block i is XOR-flipped when address bit i is
 * set.  Check bits are computed over the *untransformed* data, so a
 * read with the wrong address leaves a residue of >= 16 single-bit
 * symbol errors — far beyond the correction power of QPC — and is
 * reported detectable-but-uncorrectable.  Unlike combined eDECC, no
 * diagnosis of the faulty address is possible.
 */

#ifndef AIECC_AIECC_EDECC_TRANSFORM_HH
#define AIECC_AIECC_EDECC_TRANSFORM_HH

#include "ecc/qpc.hh"

namespace aiecc
{

/** Transformation-based address-protecting QPC (Table III: eDECC-t). */
class EDeccTransformQpc : public DataEcc
{
  public:
    EDeccTransformQpc() = default;

    std::string name() const override { return "QPC+eDECC-t"; }
    Burst encode(const BitVec &data, uint32_t mtbAddr) const override;
    EccResult decode(const Burst &burst, uint32_t mtbAddr) const override;
    bool protectsAddress() const override { return true; }
    bool preciseDiagnosis() const override { return false; }

    static constexpr unsigned numSubBlocks = 32;
    static constexpr unsigned subBlockBits = 16;

    /**
     * XOR the address mask into a burst's data pins: sub-block i
     * (pins 16*(i/8) .. +15 at beat i%8) flips iff address bit i is
     * set.  Involutory, so the same call transforms and restores.
     */
    static void applyMask(Burst &burst, uint32_t mtbAddr);

  private:
    QpcEcc inner;
};

} // namespace aiecc

#endif // AIECC_AIECC_EDECC_TRANSFORM_HH
